"""Command-line entry point: ``python -m repro.harness <experiment>``.

Examples::

    python -m repro.harness table1
    python -m repro.harness fig10 --quick
    python -m repro.harness fig12 --workloads sgemm histo
    python -m repro.harness all --workers 4 --out campaign --resume
    python -m repro.harness trace sgemm --scheme wd-commit --block-switching
    python -m repro.harness chaos saxpy --seed 11
    python -m repro.harness chaos --workloads all --seeds 0 1 2 --workers 4
    python -m repro.harness sweep lbm --seeds 0 1 --backend vectorized
    python -m repro.harness figures
    python -m repro.harness campaign
    python -m repro.harness chaos --workloads all --seeds 0 1 \\
        --out soak --coordinate 8420
    python -m repro.harness worker --coordinator http://127.0.0.1:8420
    python -m repro.harness mc --campaign --workers 2
    python -m repro.harness chaos --workloads all --seeds 0 1 --dry-run

Campaign subcommands (``all``/``chaos``/``sweep``/``mc --campaign``)
share one execution tail: ``--dry-run`` prints the cell matrix with
duration estimates, ``--coordinate PORT`` serves the matrix to remote
``worker`` processes over HTTP (work-stealing leases, validated
checkpoint uploads, byte-identical merged output — docs/ROBUSTNESS.md),
and the default runs shards on local supervisor threads.

The ``trace`` subcommand runs one workload with telemetry enabled and
writes a Chrome ``trace_event`` JSON (open in chrome://tracing / Perfetto)
plus a hierarchical counter dump — see docs/OBSERVABILITY.md.

The ``chaos`` subcommand runs a seeded fault-injection campaign with the
watchdog and invariant sanitizer enabled — see docs/ROBUSTNESS.md.  With
``--workloads``/``--seeds`` it becomes a sharded soak campaign executed
by the parallel runner.

Experiments run as a campaign of crash-isolated shards (see
:mod:`repro.harness.runner` and :mod:`repro.harness.isolation`): a
crashing, hanging or timed-out shard is retried with backoff when the
failure is transient and reported as a structured failure otherwise,
``--keep-going`` lets the remaining shards complete, ``--workers N``
runs shards in parallel (bit-identical output for any N), ``--out``
checkpoints every finished shard so ``--resume`` skips completed work,
and the harness exits nonzero when any shard failed.
"""

from __future__ import annotations

import argparse
import sys

from . import (
    ALL_EXPERIMENTS,
    DEFAULT_TIME_SCALE,
    run_table1,
)
from .diagrams import render_all
from .isolation import ExperimentFailure, run_experiment_isolated
from .runner import CampaignRunner, build_all_cells

#: every dispatchable subcommand — tools/check_doc_links.py parses this
#: tuple (textually, no import) to reject docs naming unknown subcommands
SUBCOMMANDS = (
    "trace",
    "chaos",
    "golden",
    "streams",
    "hotloop",
    "sweep",
    "figures",
    "campaign",
    "serve",
    "serve-bench",
    "mc",
    "worker",
    "dist-bench",
)


def _trace_main(argv) -> int:
    """The ``trace`` subcommand: one telemetry-enabled run, two artifacts."""
    from .tracing import run_traced

    parser = argparse.ArgumentParser(
        prog="python -m repro.harness trace",
        description=(
            "Run one workload with telemetry enabled; writes a Chrome "
            "trace_event JSON and a counter dump (docs/OBSERVABILITY.md)."
        ),
    )
    parser.add_argument("workload", help="benchmark name (e.g. sgemm, lbm)")
    parser.add_argument(
        "--scheme", default="replay-queue",
        help="pipeline scheme (baseline, wd-commit, wd-lastcheck, "
             "replay-queue, operand-log)",
    )
    parser.add_argument(
        "--paging", default="demand",
        choices=["premapped", "demand", "demand-output", "demand-heap"],
        help="paging mode (demand modes actually take faults)",
    )
    parser.add_argument(
        "--interconnect", default="nvlink", choices=["nvlink", "pcie"],
    )
    parser.add_argument("--local-handling", action="store_true",
                        help="use case 2: GPU-local first-touch handling")
    parser.add_argument("--block-switching", action="store_true",
                        help="use case 1: context switch faulted blocks")
    parser.add_argument("--ideal-switch", action="store_true",
                        help="1-cycle context save/restore")
    parser.add_argument("--time-scale", type=float,
                        default=DEFAULT_TIME_SCALE)
    parser.add_argument("--out", default="traces",
                        help="output directory (default: traces/)")
    parser.add_argument("--capacity", type=int, default=1 << 16,
                        help="event ring-buffer capacity")
    parser.add_argument("--sample-interval", type=float, default=1000.0,
                        help="counter sampling period in cycles")
    args = parser.parse_args(argv)

    try:
        run = run_traced(
            args.workload,
            scheme=args.scheme,
            paging=args.paging,
            interconnect=args.interconnect,
            local_handling=args.local_handling,
            block_switching=args.block_switching,
            ideal_switch=args.ideal_switch,
            time_scale=args.time_scale,
            out_dir=args.out,
            capacity=args.capacity,
            sample_interval=args.sample_interval,
        )
    except (KeyError, ValueError) as exc:
        # unknown workload/scheme, bad capacity: argparse-style diagnostics
        parser.error(str(exc).strip('"'))
    print(run.table().render(fmt="{:.0f}"))
    print(f"\nopen {run.paths['trace']} in chrome://tracing or "
          "https://ui.perfetto.dev")
    return 0


def _workers_spec(value: str):
    """``--workers`` values: a positive int or the literal ``auto``
    (resolved from ``os.cpu_count()`` by the runner, logged)."""
    if value == "auto":
        return "auto"
    try:
        return int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer or 'auto', got {value!r}"
        )


def _add_campaign_flags(parser) -> None:
    """The campaign-runner knobs shared by the experiment and chaos-soak
    paths: parallelism, checkpoint directory, resume, retry policy."""
    parser.add_argument(
        "--workers", type=_workers_spec, default="auto", metavar="N|auto",
        help="parallel shards (output is bit-identical for any N); "
             "'auto' derives the count from os.cpu_count(), clamped "
             "(default: auto)",
    )
    parser.add_argument(
        "--out", default=None, metavar="DIR",
        help="campaign directory: per-shard checkpoints, manifest.json "
             "and merged counters.json are written here",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="skip shards with a valid checkpoint under --out; failed or "
             "stale (config-changed) shards re-run",
    )
    parser.add_argument(
        "--max-attempts", type=int, default=3,
        help="attempts per shard for transient failures "
             "(timeout, hang, child crash) before recording the failure",
    )
    parser.add_argument(
        "--adaptive-timeout", action=argparse.BooleanOptionalAction,
        default=True,
        help="derive per-shard wall-clock timeouts from the previous "
             "manifest's durations under --out (4x the known-good "
             "duration, floor 10s, capped at --timeout; timeout retries "
             "double the allowance)",
    )
    parser.add_argument(
        "--backoff-base", type=float, default=0.5,
        help="base of the exponential retry backoff in seconds",
    )
    parser.add_argument(
        "--backend", default="scalar", choices=["scalar", "vectorized"],
        help="campaign backend: 'vectorized' batches eligible sweep "
             "cells as one numpy program; ineligible cells (chaos hooks, "
             "unsupported schemes, non-sweep cells) fall back to the "
             "scalar engine with a logged reason (docs/VECTORIZATION.md)",
    )
    parser.add_argument(
        "--dry-run", action="store_true",
        help="print the cell matrix in canonical (merge) order with "
             "per-cell duration estimates from the timeout history "
             "under --out, then exit without executing anything",
    )
    parser.add_argument(
        "--coordinate", type=int, default=None, metavar="PORT",
        help="instead of running cells locally, serve this campaign to "
             "remote workers over HTTP on PORT (0 = ephemeral port); "
             "requires --out — the campaign directory is the workers' "
             "checkpoint store (docs/ROBUSTNESS.md); start workers with "
             "'python -m repro.harness worker --coordinator URL'",
    )
    parser.add_argument(
        "--bind", default="127.0.0.1", metavar="HOST",
        help="coordinator bind address (default: loopback only; bind a "
             "routable address to accept remote workers — workers fully "
             "trust the coordinator, see docs/ROBUSTNESS.md)",
    )
    parser.add_argument(
        "--lease-seconds", type=float, default=15.0, metavar="S",
        help="coordinator lease duration: a cell unacknowledged for this "
             "long is re-leased to another worker (workers heartbeat at "
             "a third of it)",
    )


def _campaign_dispatch(args, cells, parser, *, keep_going: bool = True):
    """The shared execution tail of every cell-building subcommand:
    ``--dry-run`` prints the matrix and estimates, ``--coordinate``
    serves the matrix to remote workers (docs/ROBUSTNESS.md), the
    default runs it on the local parallel runner.  Returns an exit code
    (int) for dry-run, else the :class:`CampaignResult`."""
    from .runner import render_dry_run

    if getattr(args, "dry_run", False):
        print(render_dry_run(cells, args.out))
        return 0
    if getattr(args, "coordinate", None) is not None:
        from .dist import CampaignCoordinator

        if args.out is None:
            parser.error(
                "--coordinate requires --out: the campaign directory is "
                "the checkpoint store workers upload into"
            )
        try:
            coordinator = CampaignCoordinator(
                cells,
                out_dir=args.out,
                resume=args.resume,
                timeout=getattr(args, "timeout", None),
                adaptive_timeout=args.adaptive_timeout,
                max_attempts=args.max_attempts,
                backoff_base=args.backoff_base,
                lease_seconds=args.lease_seconds,
                host=args.bind,
                port=args.coordinate,
            )
        except ValueError as exc:
            parser.error(str(exc))
        return coordinator.run()
    try:
        runner = CampaignRunner(
            cells,
            workers=args.workers,
            out_dir=args.out,
            resume=args.resume,
            timeout=getattr(args, "timeout", None),
            adaptive_timeout=args.adaptive_timeout,
            max_attempts=args.max_attempts,
            backoff_base=args.backoff_base,
            backend=args.backend,
            keep_going=keep_going,
        )
    except ValueError as exc:
        parser.error(str(exc))
    return runner.run()


def _report_campaign(result, fmt: str = "{:.3f}") -> None:
    """Print a campaign's merged tables (stdout) and failures (stderr)."""
    for group, table in result.tables.items():
        print(table.render(fmt=fmt))
        print(f"  ({result.group_seconds.get(group, 0.0):.1f}s)\n")
    for failure in result.failures:
        print(failure.render(), file=sys.stderr)
        print(file=sys.stderr)
    if result.manifest_path:
        print(f"[campaign] manifest: {result.manifest_path}",
              file=sys.stderr)


def _sweep_main(argv) -> int:
    """The ``sweep`` subcommand: a batch-model campaign over schemes,
    seeds and fault-latency scales of one or more workloads, runnable on
    the scalar or the vectorized backend (docs/VECTORIZATION.md)."""
    from repro.batch import PAGING_MODES, VECTORIZABLE_SCHEMES
    from repro.batch import build_sweep_cells

    parser = argparse.ArgumentParser(
        prog="python -m repro.harness sweep",
        description=(
            "Sweep the batch timing model over schemes x seeds x "
            "fault-latency scales for each workload.  --backend "
            "vectorized evaluates each eligible batch as one numpy "
            "program, validated against the scalar reference on a "
            "sampled subset (docs/VECTORIZATION.md)."
        ),
    )
    parser.add_argument("workloads", nargs="+",
                        help="benchmark names (e.g. stream-sum, lbm)")
    parser.add_argument(
        "--schemes", nargs="+", default=list(VECTORIZABLE_SCHEMES),
        help="pipeline schemes to sweep (operand-log variants force the "
             "scalar backend)",
    )
    parser.add_argument("--seeds", nargs="+", type=int, default=[0],
                        help="fault-jitter seeds")
    parser.add_argument(
        "--latency-scales", nargs="+", type=int, default=[100],
        metavar="PERCENT",
        help="fault-latency scales as integer percent (100 = nominal)",
    )
    parser.add_argument(
        "--paging", default="demand", choices=list(PAGING_MODES),
        help="paging mode (demand modes actually take faults)",
    )
    parser.add_argument(
        "--chaos", action="store_true",
        help="enable the model's chaos latency chain (scalar-only: "
             "vectorized cells fall back with a logged reason)",
    )
    parser.add_argument("--timeout", type=float, default=None,
                        help="wall-clock timeout in seconds per cell")
    parser.add_argument("--json", default=None, metavar="FILE",
                        help="also write the merged tables as JSON")
    _add_campaign_flags(parser)
    args = parser.parse_args(argv)

    cells = build_sweep_cells(
        args.workloads,
        schemes=args.schemes,
        seeds=args.seeds,
        latency_scales=args.latency_scales,
        paging=args.paging,
        chaos=args.chaos,
    )
    result = _campaign_dispatch(args, cells, parser)
    if isinstance(result, int):
        return result
    _report_campaign(result, fmt="{:.0f}")
    if args.json:
        import json

        with open(args.json, "w") as fh:
            json.dump(
                {group: table.to_dict()
                 for group, table in result.tables.items()},
                fh, indent=1, sort_keys=True,
            )
        print(f"wrote {args.json}")
    return 0 if result.ok else 1


def _chaos_soak(args, parser) -> int:
    """Soak mode of the ``chaos`` subcommand: one campaign cell per
    (workload, seed) pair, executed by the parallel runner with
    checkpoints/resume; exits 0 only when every shard completed and every
    chaotic run matched its clean architectural state."""
    from repro.workloads import HALLOC_NAMES, MICRO_NAMES, PARBOIL_NAMES

    from .chaos_campaign import build_chaos_cells

    workloads = list(args.workloads)
    if workloads == ["all"]:
        workloads = list(MICRO_NAMES) + list(PARBOIL_NAMES) + list(
            HALLOC_NAMES
        )
    cells = build_chaos_cells(
        workloads,
        seeds=args.seeds,
        schemes=tuple(args.schemes),
        paging=args.paging,
        interconnect=args.interconnect,
        time_scale=args.time_scale,
        intensity=args.intensity,
        cycle_budget=args.cycle_budget,
        stream_policies=tuple(args.stream_policies),
    )
    result = _campaign_dispatch(args, cells, parser)
    if isinstance(result, int):
        return result
    _report_campaign(result, fmt="{:.1f}")
    table = result.tables.get("chaos")
    clean = table is not None and all(
        row[-1] == 1.0 for row in table.rows.values()
    )
    if not clean:
        print("chaos soak: state mismatch detected", file=sys.stderr)
    if not result.ok:
        print(
            f"chaos soak: {len(result.failures)} shard(s) failed, "
            f"{len(result.not_run)} not run",
            file=sys.stderr,
        )
    return 0 if (result.ok and clean) else 1


def _chaos_main(argv) -> int:
    """The ``chaos`` subcommand: one seeded fault-injection campaign, or —
    with ``--workloads``/``--seeds`` — a sharded soak campaign run by the
    parallel campaign runner."""
    from .chaos_campaign import (
        DEFAULT_CAMPAIGN_SCHEMES,
        build_chaos_cells,
        run_chaos_campaign,
    )

    parser = argparse.ArgumentParser(
        prog="python -m repro.harness chaos",
        description=(
            "Run a seeded, deterministic fault-injection campaign: each "
            "scheme runs clean and chaotic with the watchdog + invariant "
            "sanitizer enabled; injection must perturb timing only "
            "(docs/ROBUSTNESS.md). Exits 0 when every scheme's chaotic "
            "run matched the clean architectural state, 1 otherwise."
        ),
    )
    parser.add_argument("workload", nargs="?", default=None,
                        help="benchmark name (e.g. saxpy, sgemm); omit "
                             "when using --workloads")
    parser.add_argument("--seed", type=int, default=0,
                        help="injection RNG seed (same seed => "
                             "bit-identical campaign)")
    parser.add_argument(
        "--workloads", nargs="+", default=None, metavar="NAME",
        help="soak mode: run one shard per (workload, seed) pair through "
             "the parallel campaign runner ('all' = every benchmark)",
    )
    parser.add_argument(
        "--seeds", nargs="+", type=int, default=[0],
        help="soak mode: injection seeds (one shard per workload x seed)",
    )
    parser.add_argument(
        "--stream-policies", nargs="+", default=[], metavar="POLICY",
        choices=["partition", "interleave"],
        help="soak mode: also soak each multi-kernel stream scenario "
             "overlapped under these SM assignment policies (one shard "
             "per scenario x policy x seed)",
    )
    parser.add_argument(
        "--schemes", nargs="+", default=list(DEFAULT_CAMPAIGN_SCHEMES),
        help="pipeline schemes to exercise",
    )
    parser.add_argument(
        "--paging", default="demand",
        choices=["premapped", "demand", "demand-output", "demand-heap"],
        help="paging mode (demand modes actually take faults)",
    )
    parser.add_argument(
        "--interconnect", default="nvlink", choices=["nvlink", "pcie"],
    )
    parser.add_argument("--intensity", type=float, default=1.0,
                        help="scale every hook's firing rate")
    parser.add_argument("--time-scale", type=float,
                        default=DEFAULT_TIME_SCALE)
    parser.add_argument("--cycle-budget", type=float, default=None,
                        help="watchdog no-progress window in cycles")
    parser.add_argument("--timeout", type=float, default=None,
                        help="wall-clock timeout in seconds for the whole "
                             "campaign (runs crash-isolated)")
    parser.add_argument("--retries", type=int, default=2,
                        help="retries with a fresh seed after a watchdog "
                             "trip (SimulationHang); soak mode uses "
                             "--max-attempts instead")
    _add_campaign_flags(parser)
    args = parser.parse_args(argv)

    if args.workloads is not None:
        return _chaos_soak(args, parser)
    if args.workload is None:
        parser.error("a workload (or --workloads for soak mode) is required")

    kwargs = dict(
        workload=args.workload,
        seed=args.seed,
        schemes=tuple(args.schemes),
        paging=args.paging,
        interconnect=args.interconnect,
        time_scale=args.time_scale,
        intensity=args.intensity,
        cycle_budget=args.cycle_budget,
    )
    outcome = run_experiment_isolated(
        name=f"chaos:{args.workload}",
        fn=run_chaos_campaign,
        kwargs=kwargs,
        timeout=args.timeout,
        retries=args.retries,
        reseed=lambda attempt, kw: {
            **kw, "seed": kw["seed"] + 1000 * attempt
        },
    )
    if isinstance(outcome, ExperimentFailure):
        print(outcome.render(), file=sys.stderr)
        return 1
    print(outcome.render(fmt="{:.1f}"))
    if outcome.rows and "seed" in outcome.description:
        seed_used = outcome.description.split("seed=")[1].split()[0]
        if int(seed_used) != args.seed:
            print(f"  note: retried with fresh seed {seed_used} after a "
                  "watchdog trip")
    clean = all(row[-1] == 1.0 for row in outcome.rows.values())
    return 0 if clean else 1


def _streams_main(argv) -> int:
    """The ``streams`` subcommand: serial-vs-overlapped multi-kernel runs
    (docs/CONCURRENCY.md, EXPERIMENTS.md 'Multi-stream contention')."""
    from repro.workloads import STREAM_SCENARIO_NAMES

    from .streams import run_streams

    parser = argparse.ArgumentParser(
        prog="python -m repro.harness streams",
        description=(
            "Run each multi-kernel stream scenario twice — kernels "
            "launched serially, then overlapped on one stream each — and "
            "print the serial-sum vs overlapped-makespan table.  The "
            "overlapped run is replayed to prove bit-reproducibility "
            "unless --no-verify-repro."
        ),
    )
    parser.add_argument(
        "scenarios", nargs="*", default=None,
        metavar="SCENARIO",
        help=f"scenario names (default: all of "
             f"{list(STREAM_SCENARIO_NAMES)})",
    )
    parser.add_argument(
        "--scheme", default="replay-queue",
        help="pipeline scheme (must be preemptible for --block-switching)",
    )
    parser.add_argument(
        "--interconnect", default="nvlink", choices=["nvlink", "pcie"],
    )
    parser.add_argument(
        "--policy", default="partition", choices=["partition", "interleave"],
        help="SM-to-stream assignment policy",
    )
    parser.add_argument("--block-switching", action="store_true",
                        help="use case 1: context switch faulted blocks "
                             "(switch-ins may come from another kernel)")
    parser.add_argument("--time-scale", type=float,
                        default=DEFAULT_TIME_SCALE)
    parser.add_argument(
        "--no-verify-repro", action="store_true",
        help="skip the determinism replay of the overlapped run",
    )
    parser.add_argument("--json", default=None, metavar="FILE",
                        help="also write the table as JSON")
    args = parser.parse_args(argv)

    try:
        table = run_streams(
            scenarios=args.scenarios or None,
            scheme=args.scheme,
            interconnect=args.interconnect,
            time_scale=args.time_scale,
            policy=args.policy,
            block_switching=args.block_switching,
            verify_reproducible=not args.no_verify_repro,
        )
    except (KeyError, ValueError) as exc:
        parser.error(str(exc).strip('"'))
    print(table.render(fmt="{:.1f}", label_width=26))
    if args.json:
        import json

        with open(args.json, "w") as fh:
            json.dump(table.to_dict(), fh, indent=2)
        print(f"\nwrote {args.json}")
    return 0


def _golden_main(argv) -> int:
    """The ``golden`` subcommand: regenerate or verify the bit-identity
    digest fixture (tests/golden_digests.json, docs/PERFORMANCE.md)."""
    from . import golden

    parser = argparse.ArgumentParser(
        prog="python -m repro.harness golden",
        description=(
            "Verify (default) or regenerate the golden end-state digest "
            "fixture that pins the timing simulator's bit-identity "
            "contract.  Regenerate only when an intentional model change "
            "lands — never to make a performance PR pass."
        ),
    )
    parser.add_argument("--update", action="store_true",
                        help="recompute every digest and rewrite the fixture")
    parser.add_argument("--fast", action="store_true",
                        help="restrict to the fast subset tier-1 runs")
    parser.add_argument("--fixture", default=None,
                        help=f"fixture path (default: {golden.fixture_path()})")
    args = parser.parse_args(argv)

    if args.update:
        fixture = golden.generate(full=not args.fast)
        path = golden.save_fixture(fixture, args.fixture)
        print(f"wrote {len(fixture['cases'])} case digests to {path}")
        return 0
    fixture = golden.load_fixture(args.fixture)
    problems = golden.verify(fixture, full=not args.fast)
    for p in problems:
        print(p, file=sys.stderr)
    scope = "fast subset" if args.fast else "full matrix"
    if problems:
        print(f"golden: {len(problems)} mismatch(es) in the {scope}",
              file=sys.stderr)
        return 1
    print(f"golden: {scope} bit-identical to the committed fixture")
    return 0


def _parse_tenant_spec(value: str):
    """``--tenant`` values: ``NAME[:WEIGHT[:PRIORITY]]``."""
    parts = value.split(":")
    if not parts[0] or len(parts) > 3:
        raise argparse.ArgumentTypeError(
            f"expected NAME[:WEIGHT[:PRIORITY]], got {value!r}"
        )
    try:
        weight = int(parts[1]) if len(parts) > 1 else 1
        priority = int(parts[2]) if len(parts) > 2 else 0
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"WEIGHT and PRIORITY must be integers in {value!r}"
        )
    return parts[0], weight, priority


def _serve_smoke() -> int:
    """The ``serve --smoke`` self-test: daemon on a temp unix socket,
    one client registers a tenant, runs a kernel round-trip over the
    wire, reads stats, drains the daemon.  Exit 0 iff all of it worked
    (the CI serve-wire-smoke step)."""
    import tempfile

    from repro.serve import GpuService, ServeClient, ServeDaemon

    with tempfile.TemporaryDirectory() as tmp:
        service = GpuService(isolated=False, gpu_slots=2)
        daemon = ServeDaemon(service, path=f"{tmp}/serve.sock")
        with daemon:
            with ServeClient(daemon.address) as client:
                client.ping()
                client.register("smoke", weight=2, max_streams=2)
                spec = {
                    "workload": "saxpy",
                    "scheme": "replay-queue",
                    "time_scale": 2.0,
                    "seed": 0,
                }
                result = client.request("smoke", spec, wait=60.0)
                stats = client.stats()
        if not result["ok"]:
            print(f"serve smoke: kernel failed: {result['failure']}",
                  file=sys.stderr)
            return 1
        wire = stats["wire"]
        print(
            "serve smoke: ok — 1 kernel over the wire "
            f"(cycles={result['value'].get('cycles', 0):.0f}, "
            f"frames_in={wire['frames_in']:.0f}, "
            f"frames_out={wire['frames_out']:.0f}), clean drain"
        )
        return 0


def _serve_main(argv) -> int:
    """The ``serve`` subcommand: run the NDJSON wire daemon over the
    multi-tenant service (docs/SERVING.md), or the ``--smoke``
    self-test."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness serve",
        description=(
            "Serve the multi-tenant GPU service over a unix socket or "
            "loopback TCP (newline-delimited JSON frames).  Clients "
            "connect with repro.serve.ServeClient; tenants may be "
            "pre-registered here or via the wire 'register' op.  See "
            "docs/SERVING.md for the protocol and a walkthrough."
        ),
    )
    group = parser.add_mutually_exclusive_group()
    group.add_argument("--socket", metavar="PATH", default=None,
                       help="serve on this unix socket path")
    group.add_argument("--port", type=int, metavar="N", default=None,
                       help="serve on loopback TCP (0 = ephemeral port)")
    parser.add_argument("--host", default="127.0.0.1",
                        help="TCP bind address (default: loopback only)")
    parser.add_argument(
        "--tenant", action="append", type=_parse_tenant_spec, default=[],
        metavar="NAME[:WEIGHT[:PRIORITY]]",
        help="pre-register a tenant (repeatable); weight defaults to 1, "
             "priority to 0",
    )
    parser.add_argument("--max-streams", type=int, default=2,
                        help="per-tenant concurrent stream slots")
    parser.add_argument("--queue-depth", type=int, default=8,
                        help="per-tenant admitted wait-queue bound")
    parser.add_argument(
        "--gpu-slots", type=int, default=None, metavar="N",
        help="shared GPU pool size; grants go in weighted-fair "
             "(DRR + priority) order (default: unbounded)",
    )
    parser.add_argument(
        "--no-isolated", action="store_true",
        help="execute kernels in-process instead of forked children "
             "(faster, no timeout enforcement — tests/smoke only)",
    )
    parser.add_argument("--timeout", type=float, default=60.0,
                        help="per-kernel wall-clock timeout (isolated "
                             "execution only)")
    parser.add_argument(
        "--smoke", action="store_true",
        help="self-test: temp unix-socket daemon + one client "
             "round-trip, then exit (CI serve-wire-smoke)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        return _serve_smoke()
    if (args.socket is None) == (args.port is None):
        parser.error("exactly one of --socket PATH or --port N is "
                     "required (or --smoke)")

    from repro.serve import (
        GpuService, ServeDaemon, TenantPolicy,
    )

    service = GpuService(
        isolated=not args.no_isolated,
        timeout=args.timeout,
        gpu_slots=args.gpu_slots,
    )
    for name, weight, priority in args.tenant:
        service.register_tenant(name, TenantPolicy(
            max_streams=args.max_streams,
            max_queue_depth=args.queue_depth,
            weight=weight,
            priority=priority,
        ))
    if args.socket is not None:
        daemon = ServeDaemon(service, path=args.socket)
    else:
        daemon = ServeDaemon(service, host=args.host, port=args.port)
    daemon.start()
    addr = daemon.address
    shown = addr if isinstance(addr, str) else f"{addr[0]}:{addr[1]}"
    tenants = ", ".join(t[0] for t in args.tenant) or "none (register "\
        "via the wire 'register' op)"
    print(f"serving on {shown} — tenants: {tenants}", flush=True)
    print("Ctrl-C (or the wire 'shutdown' op) drains and exits",
          flush=True)
    try:
        daemon.join()
    except KeyboardInterrupt:
        print("\ndraining...", flush=True)
        daemon.shutdown(drain=True)
    return 0


def _worker_main(argv) -> int:
    """The ``worker`` subcommand: join a coordinator's campaign as N
    remote supervisors (docs/ROBUSTNESS.md).  Exits 0 when the matrix
    completed, 3 when the coordinator became unreachable (in-flight
    cells are cancelled, nothing is left half-written), 2 on a protocol
    version mismatch."""
    from .dist import DistWorker

    parser = argparse.ArgumentParser(
        prog="python -m repro.harness worker",
        description=(
            "Work a distributed campaign: lease cells from the "
            "coordinator, run them through the standard crash-isolated "
            "retry loop, upload validated checkpoints.  The worker "
            "imports and executes the callables the coordinator names — "
            "only point it at coordinators you trust "
            "(docs/ROBUSTNESS.md)."
        ),
    )
    parser.add_argument(
        "--coordinator", required=True, metavar="URL",
        help="coordinator base URL (e.g. http://127.0.0.1:8420)",
    )
    parser.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="supervisor threads (each babysits one crash-isolated "
             "child at a time, exactly like the local runner)",
    )
    parser.add_argument(
        "--name", default=None,
        help="worker identity in leases/logs (default: host-pid)",
    )
    parser.add_argument(
        "--backend", default="scalar", choices=["scalar", "vectorized"],
        help="cell execution backend (same routing rules as the local "
             "runner; docs/VECTORIZATION.md)",
    )
    parser.add_argument(
        "--poll-interval", type=float, default=0.25, metavar="S",
        help="idle back-off between lease attempts when every cell is "
             "leased elsewhere",
    )
    args = parser.parse_args(argv)
    try:
        worker = DistWorker(
            args.coordinator,
            workers=args.workers,
            name=args.name,
            backend=args.backend,
            poll_interval=args.poll_interval,
        )
    except ValueError as exc:
        parser.error(str(exc))
    return worker.run()


def _mc_main(argv) -> int:
    """The ``mc`` subcommand: bounded model checking of stream/fault
    schedules (docs/MODELCHECK.md).  Explores each scenario's choice-trace
    space within budget, verifying every interleaving with the invariant
    sanitizer and cross-checking the functional/architectural digests."""
    from repro.mc import (
        DEFAULT_MC_SCENARIOS,
        MC_SCENARIOS,
        get_mc_scenario,
        replay_trace,
        run_mc_scenario,
    )
    from repro.mc.scenarios import MC_CYCLE_BUDGET, MC_TIME_SCALE
    from repro.telemetry import CounterRegistry

    parser = argparse.ArgumentParser(
        prog="python -m repro.harness mc",
        description=(
            "Bounded model checking of stream/fault schedules: enumerate "
            "the simulator's schedule decision points (steal order, fault "
            "service order, chaos injection) DFS-style under budgets, "
            "verify every interleaving with the invariant sanitizer, and "
            "cross-check functional/architectural digests "
            "(docs/MODELCHECK.md).  Exits 0 when every scenario met its "
            "expectation: all interleavings clean with consistent digests "
            "— or, for a negative-control scenario, a counterexample "
            "found."
        ),
    )
    parser.add_argument(
        "scenarios", nargs="*", metavar="SCENARIO",
        help=f"mc scenarios (default: {list(DEFAULT_MC_SCENARIOS)}; "
             f"known: {sorted(MC_SCENARIOS)})",
    )
    parser.add_argument("--max-executions", type=int, default=64,
                        help="executions explored per scenario")
    parser.add_argument("--max-depth", type=int, default=48,
                        help="deepest decision point branched from")
    parser.add_argument("--max-branch", type=int, default=3,
                        help="alternatives tried per decision point")
    parser.add_argument("--scheme", default="replay-queue",
                        help="pipeline scheme the executions run under")
    parser.add_argument(
        "--policy", default="partition", choices=["partition", "interleave"],
        help="SM-to-stream assignment policy",
    )
    parser.add_argument("--time-scale", type=float, default=MC_TIME_SCALE)
    parser.add_argument("--cycle-budget", type=float,
                        default=MC_CYCLE_BUDGET,
                        help="watchdog no-progress window per execution")
    parser.add_argument("--json", default=None, metavar="FILE",
                        help="write the full exploration reports as JSON")
    parser.add_argument(
        "--replay", default=None, metavar="TRACE",
        help="replay one comma-separated choice trace (e.g. '0,0,1') "
             "instead of exploring; requires exactly one scenario; exits "
             "0 iff the replayed execution is clean",
    )
    parser.add_argument(
        "--campaign", action="store_true",
        help="run the scenarios as campaign cells (one shard per "
             "scenario) through the parallel runner: checkpoints, "
             "--resume, --workers, --dry-run and --coordinate all apply",
    )
    parser.add_argument("--timeout", type=float, default=None,
                        help="campaign mode: wall-clock timeout in "
                             "seconds per scenario cell")
    _add_campaign_flags(parser)
    args = parser.parse_args(argv)

    names = list(args.scenarios) or list(DEFAULT_MC_SCENARIOS)
    for name in names:
        if name not in MC_SCENARIOS:
            parser.error(f"unknown mc scenario {name!r}; "
                         f"known: {sorted(MC_SCENARIOS)}")

    if args.campaign:
        from repro.mc.cells import build_mc_cells

        cells = build_mc_cells(
            names,
            max_executions=args.max_executions,
            max_depth=args.max_depth,
            max_branch=args.max_branch,
            scheme=args.scheme,
            policy=args.policy,
            time_scale=args.time_scale,
            cycle_budget=args.cycle_budget,
        )
        result = _campaign_dispatch(args, cells, parser)
        if isinstance(result, int):
            return result
        _report_campaign(result, fmt="{:.0f}")
        table = result.tables.get("mc")
        met = table is not None and all(
            row[-1] == 1.0 for row in table.rows.values()
        )
        if not met:
            print("mc campaign: scenario expectation not met",
                  file=sys.stderr)
        return 0 if (result.ok and met) else 1

    if args.replay is not None:
        if len(names) != 1:
            parser.error("--replay requires exactly one scenario")
        try:
            trace = tuple(
                int(tok) for tok in args.replay.split(",") if tok.strip()
            )
        except ValueError:
            parser.error(f"--replay expects comma-separated ints, got "
                         f"{args.replay!r}")
        execution = replay_trace(
            names[0], trace, scheme=args.scheme, policy=args.policy,
            time_scale=args.time_scale, cycle_budget=args.cycle_budget,
        )
        print(f"mc:{names[0]} replay of {len(trace)} forced choice(s): "
              f"verdict={execution.verdict}")
        if execution.error:
            print(f"  error: {execution.error}")
        for point in execution.points:
            print(f"  {point.describe()}")
        return 0 if execution.clean else 1

    counters = CounterRegistry()
    reports = {}
    ok = True
    for name in names:
        report = run_mc_scenario(
            name,
            max_executions=args.max_executions,
            max_depth=args.max_depth,
            max_branch=args.max_branch,
            scheme=args.scheme,
            policy=args.policy,
            time_scale=args.time_scale,
            cycle_budget=args.cycle_budget,
            counters=counters,
        )
        reports[name] = report
        print(report.summary())
        scenario = get_mc_scenario(name)
        if scenario.expect_counterexample:
            passed = bool(report.counterexamples)
            if not passed:
                print("  FAIL: negative control found no counterexample",
                      file=sys.stderr)
            else:
                cx = report.counterexamples[0]
                print(f"  counterexample (minimized, {len(cx.minimized)} "
                      f"choice(s), {cx.replays} replay(s)): "
                      f"{','.join(map(str, cx.minimized))}")
        else:
            passed = report.all_clean and report.digest_consistent()
            if not passed:
                print("  FAIL: non-clean interleaving or digest divergence",
                      file=sys.stderr)
        ok = ok and passed
        print()
    print("mc counters:")
    for path, value in sorted(counters.snapshot().items()):
        print(f"  {path} = {value:.0f}")
    if args.json:
        import json

        payload = {
            "scenarios": {n: r.to_dict() for n, r in reports.items()},
            "counters": counters.snapshot(),
            "budgets": {
                "max_executions": args.max_executions,
                "max_depth": args.max_depth,
                "max_branch": args.max_branch,
            },
            "ok": ok,
        }
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=1, sort_keys=True)
        print(f"wrote {args.json}")
    return 0 if ok else 1


def main(argv=None) -> int:
    """Dispatch to an experiment runner or the ``trace`` / ``chaos`` /
    ``golden`` subcommand; returns the process exit code (nonzero when
    any experiment failed)."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "trace":
        return _trace_main(argv[1:])
    if argv and argv[0] == "chaos":
        return _chaos_main(argv[1:])
    if argv and argv[0] == "golden":
        return _golden_main(argv[1:])
    if argv and argv[0] == "streams":
        return _streams_main(argv[1:])
    if argv and argv[0] == "hotloop":
        from .hotloop_bench import main as hotloop_main

        return hotloop_main(argv[1:])
    if argv and argv[0] == "sweep":
        return _sweep_main(argv[1:])
    if argv and argv[0] == "figures":
        from .figures import main as figures_main

        return figures_main(argv[1:])
    if argv and argv[0] == "campaign":
        from .campaign_bench import main as campaign_main

        return campaign_main(argv[1:])
    if argv and argv[0] == "serve":
        return _serve_main(argv[1:])
    if argv and argv[0] == "serve-bench":
        from .serve_bench import main as serve_main

        return serve_main(argv[1:])
    if argv and argv[0] == "mc":
        return _mc_main(argv[1:])
    if argv and argv[0] == "worker":
        return _worker_main(argv[1:])
    if argv and argv[0] == "dist-bench":
        from .dist_bench import main as dist_bench_main

        return dist_bench_main(argv[1:])

    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Regenerate the paper's tables and figures.",
        epilog="See also: python -m repro.harness trace <workload> "
               "(telemetry-enabled run; writes Chrome trace + counters) "
               "and python -m repro.harness chaos <workload> "
               "(seeded fault-injection campaign; docs/ROBUSTNESS.md).",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(ALL_EXPERIMENTS) + ["table1", "diagrams", "all"],
        help="which experiment to run",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="representative benchmark subset instead of the full suite",
    )
    parser.add_argument(
        "--workloads", nargs="+", default=None,
        help="explicit benchmark names (overrides --quick)",
    )
    parser.add_argument(
        "--timeout", type=float, default=None,
        help="wall-clock timeout in seconds per experiment (a timed-out "
             "experiment is terminated and reported as a failure)",
    )
    parser.add_argument(
        "--keep-going", action=argparse.BooleanOptionalAction, default=None,
        help="continue past a failed experiment and report all failures "
             "at the end (default: on for 'all', off for a single "
             "experiment); the exit code is nonzero if any experiment "
             "failed either way",
    )
    _add_campaign_flags(parser)
    args = parser.parse_args(argv)

    if args.experiment == "table1":
        print(run_table1())
        return 0
    if args.experiment == "diagrams":
        print(render_all())
        return 0

    names = (
        sorted(ALL_EXPERIMENTS) if args.experiment == "all"
        else [args.experiment]
    )
    keep_going = (
        args.keep_going
        if args.keep_going is not None
        else args.experiment == "all"
    )
    cells = build_all_cells(
        {name: ALL_EXPERIMENTS[name] for name in names},
        quick=args.quick,
        workloads=args.workloads,
    )
    result = _campaign_dispatch(args, cells, parser, keep_going=keep_going)
    if isinstance(result, int):
        return result
    _report_campaign(result)
    if result.failures:
        done = None
        if keep_going:
            groups = {cell.group for cell in cells}
            done = len(groups) - len(result.failed_groups)
        summary = ", ".join(f.name for f in result.failures)
        print(
            f"{len(result.failures)} experiment(s) failed: {summary}"
            + (f" ({done} completed)" if done is not None else ""),
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
