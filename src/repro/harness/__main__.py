"""Command-line entry point: ``python -m repro.harness <experiment>``.

Examples::

    python -m repro.harness table1
    python -m repro.harness fig10 --quick
    python -m repro.harness fig12 --workloads sgemm histo
    python -m repro.harness all
"""

from __future__ import annotations

import argparse
import sys
import time

from . import (
    ALL_EXPERIMENTS,
    run_table1,
)
from .diagrams import render_all


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(ALL_EXPERIMENTS) + ["table1", "diagrams", "all"],
        help="which experiment to run",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="representative benchmark subset instead of the full suite",
    )
    parser.add_argument(
        "--workloads", nargs="+", default=None,
        help="explicit benchmark names (overrides --quick)",
    )
    args = parser.parse_args(argv)

    if args.experiment == "table1":
        print(run_table1())
        return 0
    if args.experiment == "diagrams":
        print(render_all())
        return 0

    names = (
        sorted(ALL_EXPERIMENTS) if args.experiment == "all"
        else [args.experiment]
    )
    for name in names:
        runner = ALL_EXPERIMENTS[name]
        start = time.time()
        kwargs = {}
        if name not in ("table2",):
            kwargs["quick"] = args.quick
            if args.workloads:
                kwargs["workloads"] = args.workloads
        table = runner(**kwargs)
        print(table.render())
        print(f"  ({time.time() - start:.1f}s)\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
