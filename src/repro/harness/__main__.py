"""Command-line entry point: ``python -m repro.harness <experiment>``.

Examples::

    python -m repro.harness table1
    python -m repro.harness fig10 --quick
    python -m repro.harness fig12 --workloads sgemm histo
    python -m repro.harness all
    python -m repro.harness trace sgemm --scheme wd-commit --block-switching

The ``trace`` subcommand runs one workload with telemetry enabled and
writes a Chrome ``trace_event`` JSON (open in chrome://tracing / Perfetto)
plus a hierarchical counter dump — see docs/OBSERVABILITY.md.
"""

from __future__ import annotations

import argparse
import sys
import time

from . import (
    ALL_EXPERIMENTS,
    DEFAULT_TIME_SCALE,
    run_table1,
)
from .diagrams import render_all


def _trace_main(argv) -> int:
    """The ``trace`` subcommand: one telemetry-enabled run, two artifacts."""
    from .tracing import run_traced

    parser = argparse.ArgumentParser(
        prog="python -m repro.harness trace",
        description=(
            "Run one workload with telemetry enabled; writes a Chrome "
            "trace_event JSON and a counter dump (docs/OBSERVABILITY.md)."
        ),
    )
    parser.add_argument("workload", help="benchmark name (e.g. sgemm, lbm)")
    parser.add_argument(
        "--scheme", default="replay-queue",
        help="pipeline scheme (baseline, wd-commit, wd-lastcheck, "
             "replay-queue, operand-log)",
    )
    parser.add_argument(
        "--paging", default="demand",
        choices=["premapped", "demand", "demand-output", "demand-heap"],
        help="paging mode (demand modes actually take faults)",
    )
    parser.add_argument(
        "--interconnect", default="nvlink", choices=["nvlink", "pcie"],
    )
    parser.add_argument("--local-handling", action="store_true",
                        help="use case 2: GPU-local first-touch handling")
    parser.add_argument("--block-switching", action="store_true",
                        help="use case 1: context switch faulted blocks")
    parser.add_argument("--ideal-switch", action="store_true",
                        help="1-cycle context save/restore")
    parser.add_argument("--time-scale", type=float,
                        default=DEFAULT_TIME_SCALE)
    parser.add_argument("--out", default="traces",
                        help="output directory (default: traces/)")
    parser.add_argument("--capacity", type=int, default=1 << 16,
                        help="event ring-buffer capacity")
    parser.add_argument("--sample-interval", type=float, default=1000.0,
                        help="counter sampling period in cycles")
    args = parser.parse_args(argv)

    try:
        run = run_traced(
            args.workload,
            scheme=args.scheme,
            paging=args.paging,
            interconnect=args.interconnect,
            local_handling=args.local_handling,
            block_switching=args.block_switching,
            ideal_switch=args.ideal_switch,
            time_scale=args.time_scale,
            out_dir=args.out,
            capacity=args.capacity,
            sample_interval=args.sample_interval,
        )
    except (KeyError, ValueError) as exc:
        # unknown workload/scheme, bad capacity: argparse-style diagnostics
        parser.error(str(exc).strip('"'))
    print(run.table().render(fmt="{:.0f}"))
    print(f"\nopen {run.paths['trace']} in chrome://tracing or "
          "https://ui.perfetto.dev")
    return 0


def main(argv=None) -> int:
    """Dispatch to an experiment runner or the ``trace`` subcommand."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "trace":
        return _trace_main(argv[1:])

    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Regenerate the paper's tables and figures.",
        epilog="See also: python -m repro.harness trace <workload> "
               "(telemetry-enabled run; writes Chrome trace + counters).",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(ALL_EXPERIMENTS) + ["table1", "diagrams", "all"],
        help="which experiment to run",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="representative benchmark subset instead of the full suite",
    )
    parser.add_argument(
        "--workloads", nargs="+", default=None,
        help="explicit benchmark names (overrides --quick)",
    )
    args = parser.parse_args(argv)

    if args.experiment == "table1":
        print(run_table1())
        return 0
    if args.experiment == "diagrams":
        print(render_all())
        return 0

    names = (
        sorted(ALL_EXPERIMENTS) if args.experiment == "all"
        else [args.experiment]
    )
    for name in names:
        runner = ALL_EXPERIMENTS[name]
        start = time.time()
        kwargs = {}
        if name not in ("table2",):
            kwargs["quick"] = args.quick
            if args.workloads:
                kwargs["workloads"] = args.workloads
        table = runner(**kwargs)
        print(table.render())
        print(f"  ({time.time() - start:.1f}s)\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
