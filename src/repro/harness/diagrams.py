"""Pipeline timing diagrams (paper Figures 3, 4, 6 and 7).

Reproduces the paper's 4-instruction example under each scheme as an ASCII
pipeline diagram.  The example program (Section 2.5):

    A:  R3 <- ld [R2]      (global load, long latency, may fault)
    B:  R9 <- sub R9, 4    (independent ALU)
    C:  R8 <- ld [R4]      (global load, reads R4)
    D:  R4 <- add R7, 8    (writes R4 -> WAR with C)

The model here is the single-warp, in-order-issue pipeline of the paper's
figures: fetch (F) -> issue (I) -> operand read (O) -> execute (E..E) ->
commit (C), memory execute latency 6 cycles with the last TLB check two
cycles into execution, ALU latency 1.  It exists to *illustrate and test*
the per-scheme issue rules — the full timing simulator is in
:mod:`repro.timing`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

MEM_LATENCY = 6  # E stages of the global-memory pipeline in the figures
TLB_CHECK_AT = 3  # last TLB check happens this many E-stages in
ALU_LATENCY = 1


@dataclass
class ExampleInst:
    """One instruction of the example program."""

    label: str
    text: str
    is_mem: bool
    srcs: tuple
    dests: tuple


EXAMPLE_PROGRAM = [
    ExampleInst("A", "R3 <- ld [R2]", True, ("R2",), ("R3",)),
    ExampleInst("B", "R9 <- sub R9, 4", False, ("R9",), ("R9",)),
    ExampleInst("C", "R8 <- ld [R4]", True, ("R4",), ("R8",)),
    ExampleInst("D", "R4 <- add R7, 8", False, ("R7",), ("R4",)),
]


@dataclass
class _Timing:
    fetch: int
    issue: int
    opread: int
    exec_end: int
    commit: int
    last_check: int


def _schedule(scheme: str) -> List[_Timing]:
    """Cycle-accurate schedule of the example under ``scheme``.

    Schemes: ``baseline`` (early source release at operand read),
    ``wd-commit``, ``wd-lastcheck`` (fetch disabled after a memory
    instruction until commit / last TLB check), ``replay-queue`` (source
    release of memory instructions at last TLB check), ``operand-log``
    (baseline timing; sources preserved in the log).
    """
    if scheme not in (
        "baseline", "wd-commit", "wd-lastcheck", "replay-queue", "operand-log"
    ):
        raise ValueError(f"unknown scheme {scheme!r}")
    timings: List[_Timing] = []
    fetch_free = 1  # next cycle the fetch stage is available
    # register -> release time of pending reads (WAR) / writes (RAW/WAW)
    pending_read: Dict[str, int] = {}
    pending_write: Dict[str, int] = {}
    for inst in EXAMPLE_PROGRAM:
        fetch = fetch_free
        issue = fetch + 1
        # scoreboard: wait out hazards
        for reg in inst.srcs:
            issue = max(issue, pending_write.get(reg, 0) + 1)  # RAW
        for reg in inst.dests:
            issue = max(issue, pending_write.get(reg, 0) + 1)  # WAW
            issue = max(issue, pending_read.get(reg, 0) + 1)  # WAR
        opread = issue + 1
        latency = MEM_LATENCY if inst.is_mem else ALU_LATENCY
        exec_end = opread + latency
        commit = exec_end + 1
        last_check = opread + TLB_CHECK_AT if inst.is_mem else opread

        # source-operand scoreboard release point
        if inst.is_mem and scheme == "replay-queue":
            release = last_check
        else:
            release = opread  # baseline early release (also operand-log)
        for reg in inst.srcs:
            pending_read[reg] = max(pending_read.get(reg, 0), release)
        for reg in inst.dests:
            pending_write[reg] = max(pending_write.get(reg, 0), commit)

        # fetch-disable window (warp disable schemes; figures show the
        # barrier starting after the memory instruction is fetched)
        if inst.is_mem and scheme == "wd-commit":
            fetch_free = commit + 1
        elif inst.is_mem and scheme == "wd-lastcheck":
            fetch_free = last_check + 1
        else:
            fetch_free = fetch + 1

        timings.append(
            _Timing(fetch, issue, opread, exec_end, commit, last_check)
        )
    return timings


def render(scheme: str) -> str:
    """Render the example program's pipeline diagram for ``scheme``."""
    timings = _schedule(scheme)
    horizon = max(t.commit for t in timings)
    header = "    " + "".join(f"{c:>3d}" for c in range(1, horizon + 1))
    lines = [f"[{scheme}]", header]
    for inst, t in zip(EXAMPLE_PROGRAM, timings):
        cells = []
        for cycle in range(1, horizon + 1):
            if cycle == t.fetch:
                cells.append("F")
            elif cycle == t.issue:
                cells.append("I")
            elif cycle == t.opread:
                cells.append("O")
            elif t.opread < cycle <= t.exec_end:
                cells.append("E")
            elif cycle == t.commit:
                cells.append("C")
            elif t.fetch < cycle < t.issue:
                cells.append(".")  # issue stall
            else:
                cells.append(" ")
        row = "".join(f"{c:>3s}" for c in cells)
        lines.append(f"{inst.label}:  {row}   {inst.text}")
    return "\n".join(lines)


def completion_cycle(scheme: str) -> int:
    """Cycle when the example's last instruction commits under ``scheme``."""
    return max(t.commit for t in _schedule(scheme))


def issue_cycles(scheme: str) -> Dict[str, int]:
    """Label -> issue cycle (used by tests to check the figures' facts)."""
    return {
        inst.label: t.issue
        for inst, t in zip(EXAMPLE_PROGRAM, _schedule(scheme))
    }


def render_all() -> str:
    """All four figures' diagrams, in paper order."""
    parts = [
        "Figure 3 (baseline; the culprits of non-preemptible faults):",
        render("baseline"),
        "",
        "Figure 4 (warp disable):",
        render("wd-commit"),
        "",
        "Figure 6 (replay queue):",
        render("replay-queue"),
        "",
        "Figure 7 (operand log):",
        render("operand-log"),
    ]
    return "\n".join(parts)
