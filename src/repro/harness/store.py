"""Content-addressed campaign storage shared by the local runner and
the distributed coordinator.

A campaign directory (``--out``) is a small durable store with four
kinds of artifacts, all written through this module so the serial
:class:`repro.harness.runner.CampaignRunner` and the distributed
:class:`repro.harness.dist.CampaignCoordinator` produce byte-identical
layouts:

``cells/<key>.<config-hash>.json``
    one checkpoint per finished cell — the result table, the attempt
    ledger, the cell's counter dump.  Written **gzip-compressed** via
    atomic rename; readers sniff the two gzip magic bytes so plain-JSON
    checkpoints from older campaigns keep restoring (the filename never
    changes, so resume across the compression change is seamless).
``manifest.json``
    every cell's current status, rewritten as cells finish.  Plain JSON
    (it is the file humans and CI artifacts read first).
``timeout_history.json``
    per-cell wall-clock durations keyed by config hash, the source of
    the adaptive per-cell timeouts and ``--dry-run`` estimates.  Updated
    with an **atomic read-modify-write under a lock file**, so several
    campaign processes sharing one directory merge their histories
    instead of last-writer-wins clobbering each other.
``tables.json`` / ``counters.json`` / ``ops_counters.json``
    the merge artifacts (:func:`write_merge_artifacts`):
    ``tables.json`` and ``counters.json`` depend only on the cell matrix
    and its results (canonical cell order), so any worker count on any
    number of machines produces identical bytes; ``ops_counters.json``
    carries the run-shape counters (``harness.campaign.*``,
    ``harness.dist.*``) that legitimately differ between runs.

Checkpoint *identity* is the cell's config hash
(:meth:`repro.harness.runner.CampaignCell.config_hash`); checkpoint
*content* can additionally be summarized by :func:`result_hash`, which
hashes only the result-determining fields (status + table) — the
distributed coordinator uses it to deduplicate the same cell uploaded
by two workers after a lease steal, where volatile fields (durations)
differ but the result bytes must not.
"""

from __future__ import annotations

import gzip
import json
import os
import threading
import time
from typing import Dict, List, Optional, TYPE_CHECKING

from repro.telemetry.counters import CounterRegistry

from .hashing import content_hash

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .runner import CampaignCell, CellOutcome

#: checkpoint/manifest schema version (bump on incompatible change;
#: gzip compression is *not* one — readers sniff the magic bytes)
CHECKPOINT_VERSION = 1

#: the two-byte gzip magic sniffed by :func:`read_json`
GZIP_MAGIC = b"\x1f\x8b"

#: lock-file staleness horizon for the timeout-history read-modify-write
#: (a crashed writer's lock older than this is broken and reclaimed)
HISTORY_LOCK_STALE_S = 10.0


# ---------------------------------------------------------------------------
# atomic JSON IO (gzip on write, magic-sniffed on read)
# ---------------------------------------------------------------------------

def _tmp_suffix() -> str:
    """Tmp-file suffix unique across processes *and* threads (several
    campaign processes may share one directory)."""
    return f".tmp.{os.getpid()}.{threading.get_ident()}"


def write_json(path: str, payload, *, compress: bool = False) -> None:
    """Write ``payload`` as canonical JSON via atomic rename; a SIGKILL
    mid-write can never leave a half-file under the final name."""
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    tmp = path + _tmp_suffix()
    blob = json.dumps(payload, indent=1, sort_keys=True).encode()
    if compress:
        # mtime=0 keeps the compressed bytes deterministic for equal
        # payloads (gzip embeds a timestamp otherwise)
        blob = gzip.compress(blob, mtime=0)
    with open(tmp, "wb") as fh:
        fh.write(blob)
    os.replace(tmp, path)


def read_json(path: str):
    """Read a JSON file written by :func:`write_json` — gzip-compressed
    or plain, decided by sniffing the magic bytes, so pre-compression
    campaign directories stay readable.  Raises ``OSError`` /
    ``ValueError`` like ``json.load`` would."""
    with open(path, "rb") as fh:
        blob = fh.read()
    if blob[:2] == GZIP_MAGIC:
        blob = gzip.decompress(blob)
    return json.loads(blob.decode())


# ---------------------------------------------------------------------------
# checkpoints
# ---------------------------------------------------------------------------

def cells_dir(out_dir: str) -> str:
    return os.path.join(out_dir, "cells")


def checkpoint_path(out_dir: str, key: str, config_hash: str) -> str:
    safe = key.replace(os.sep, "__").replace("/", "__")
    return os.path.join(cells_dir(out_dir), f"{safe}.{config_hash}.json")


def cell_counter_dump(outcome: "CellOutcome") -> Dict:
    """The cell's own counter dump — everything in it derives from the
    attempt ledger, so a restored cell dumps identically to the fresh
    run that produced its checkpoint (the deterministic-merge contract
    depends on this)."""
    cell = outcome.cell
    reg = CounterRegistry()
    reg.metadata.update(
        cell=cell.key,
        group=cell.group,
        config_hash=cell.config_hash(),
    )
    reg.counter("harness.cell.attempts").add(len(outcome.ledger))
    reg.counter("harness.cell.retries").add(max(0, len(outcome.ledger) - 1))
    reg.counter("harness.cell.failures").add(0 if outcome.ok else 1)
    backoff = sum(e.get("backoff_s", 0.0) for e in outcome.ledger)
    reg.counter("harness.cell.backoff_seconds").add(backoff)
    return reg.to_dict()


def build_checkpoint(outcome: "CellOutcome") -> Dict:
    """The checkpoint payload for one finished cell — the wire format of
    a distributed upload and the on-disk format under ``cells/``."""
    cell = outcome.cell
    return {
        "version": CHECKPOINT_VERSION,
        "key": cell.key,
        "group": cell.group,
        "config_hash": cell.config_hash(),
        "status": "ok" if outcome.ok else "failed",
        "table": outcome.table.to_dict() if outcome.ok else None,
        "failure": (
            None
            if outcome.failure is None
            else {
                "kind": outcome.failure.kind,
                "message": outcome.failure.message,
                "attempts": outcome.failure.attempts,
                "traceback": outcome.failure.traceback_text,
            }
        ),
        "ledger": outcome.ledger,
        "counters": cell_counter_dump(outcome),
        "duration_s": outcome.duration_s,
    }


def validate_checkpoint(data, key: str, config_hash: str) -> Optional[str]:
    """Why ``data`` is not an acceptable checkpoint for ``(key,
    config_hash)`` — ``None`` when it is.  Used both on ``--resume``
    restore and on distributed upload, so a worker can never persist a
    checkpoint the local runner would refuse to trust."""
    if not isinstance(data, dict):
        return "not a JSON object"
    if data.get("version") != CHECKPOINT_VERSION:
        return f"checkpoint version {data.get('version')!r} != {CHECKPOINT_VERSION}"
    if data.get("key") != key:
        return f"checkpoint key {data.get('key')!r} != {key!r}"
    if data.get("config_hash") != config_hash:
        return "config hash mismatch (stale checkpoint)"
    status = data.get("status")
    if status not in ("ok", "failed"):
        return f"unknown status {status!r}"
    if status == "ok":
        if not data.get("table"):
            return "ok checkpoint without a table"
        from .results import ExperimentTable

        try:
            ExperimentTable.from_dict(data["table"])
        except (KeyError, TypeError, ValueError) as exc:
            return f"table does not parse ({exc})"
    elif not isinstance(data.get("failure"), dict):
        return "failed checkpoint without a failure record"
    if not isinstance(data.get("ledger"), list):
        return "missing attempt ledger"
    return None


def result_hash(data: Dict) -> str:
    """Content hash over the result-determining checkpoint fields only
    (status + table) — volatile fields like durations excluded, so two
    workers that ran the same cell (a lease steal) hash identically iff
    the determinism contract held."""
    return content_hash({"status": data.get("status"),
                         "table": data.get("table")})


# ---------------------------------------------------------------------------
# manifest
# ---------------------------------------------------------------------------

def manifest_path(out_dir: str) -> str:
    return os.path.join(out_dir, "manifest.json")


def load_manifest_entries(out_dir: str) -> Dict[str, Dict]:
    """The previous run's ``manifest.json`` cells keyed by cell key
    (empty when no readable manifest exists).  Used on resume to
    corroborate checkpoints: a checkpoint the manifest never
    acknowledged is a *torn* write — the driver died between the
    checkpoint write and the manifest rewrite."""
    try:
        data = read_json(manifest_path(out_dir))
    except (OSError, ValueError):
        return {}
    return {
        entry["key"]: entry
        for entry in data.get("cells", [])
        if isinstance(entry, dict) and "key" in entry
    }


def manifest_payload(
    cells,
    outcomes: Dict[str, "CellOutcome"],
    *,
    out_dir: str,
    workers,
    degraded: bool,
    resume: bool,
    extra: Optional[Dict] = None,
) -> Dict:
    """The ``manifest.json`` payload reflecting every cell's current
    status (outcome present => ok/restored/failed; absent => not-run)."""
    entries = []
    totals = {"cells": len(cells), "completed": 0, "skipped": 0,
              "failed": 0, "not_run": 0}
    for cell in cells:
        outcome = outcomes.get(cell.key)
        if outcome is None:
            status = "not-run"
            totals["not_run"] += 1
        elif not outcome.ok:
            status = "failed"
            totals["failed"] += 1
        elif outcome.restored:
            status = "restored"
            totals["skipped"] += 1
        else:
            status = "ok"
            totals["completed"] += 1
        entry = {
            "key": cell.key,
            "group": cell.group,
            "config_hash": cell.config_hash(),
            "status": status,
            "checkpoint": os.path.relpath(
                checkpoint_path(out_dir, cell.key, cell.config_hash()),
                out_dir,
            ),
        }
        if outcome is not None:
            entry["attempts"] = len(outcome.ledger)
            entry["duration_s"] = round(outcome.duration_s, 3)
        entries.append(entry)
    payload = {
        "version": CHECKPOINT_VERSION,
        "workers": workers,
        "degraded": degraded,
        "resume": resume,
        "totals": totals,
        "cells": entries,
    }
    if extra:
        payload.update(extra)
    return payload


# ---------------------------------------------------------------------------
# adaptive-timeout history
# ---------------------------------------------------------------------------

class TimeoutHistory:
    """Per-cell wall-clock durations shared across campaign processes.

    The history lives in ``<out_dir>/timeout_history.json`` as
    ``{"version": 1, "cells": {key: {"config_hash": h, "duration_s": d}}}``
    and feeds two consumers: the adaptive per-cell timeouts
    (``max(floor, duration * margin)``) and the ``--dry-run`` duration
    estimates.  :meth:`flush` performs an **atomic read-modify-write**
    under an ``O_EXCL`` lock file: concurrent campaign processes (the
    distributed coordinator, several local runners pointed at one soak
    directory) each merge their freshly measured durations into the
    shared file instead of overwriting each other's — the
    last-writer-wins hazard the old manifest-only scheme had.  A lock
    older than ``HISTORY_LOCK_STALE_S`` (a crashed writer) is broken.
    """

    def __init__(self) -> None:
        #: key -> {"config_hash", "duration_s"} pending merge
        self._pending: Dict[str, Dict] = {}
        self._lock = threading.Lock()

    # -- reading -----------------------------------------------------------

    @staticmethod
    def path(out_dir: str) -> str:
        return os.path.join(out_dir, "timeout_history.json")

    @staticmethod
    def load(out_dir: str) -> Dict[str, Dict]:
        """The shared history entries keyed by cell key (empty when the
        file is missing or unreadable)."""
        try:
            data = read_json(TimeoutHistory.path(out_dir))
        except (OSError, ValueError):
            return {}
        cells = data.get("cells")
        if not isinstance(cells, dict):
            return {}
        return {
            key: entry for key, entry in cells.items()
            if isinstance(entry, dict)
            and isinstance(entry.get("duration_s"), (int, float))
        }

    @staticmethod
    def estimate(entries: Dict[str, Dict], cell: "CampaignCell"):
        """The cell's known-good duration, or ``None`` without usable
        history (missing entry or stale config hash)."""
        entry = entries.get(cell.key)
        if entry is None or entry.get("config_hash") != cell.config_hash():
            return None
        duration = entry.get("duration_s")
        if not isinstance(duration, (int, float)) or duration <= 0:
            return None
        return float(duration)

    # -- writing -----------------------------------------------------------

    def record(self, cell: "CampaignCell", duration_s: float) -> None:
        """Queue one completed cell's duration for the next flush
        (thread-safe; durations are rounded so repeated merges of the
        same results keep the file bytes stable)."""
        if duration_s <= 0:
            return
        with self._lock:
            self._pending[cell.key] = {
                "config_hash": cell.config_hash(),
                "duration_s": round(float(duration_s), 3),
            }

    def flush(self, out_dir: str, *, sleep=time.sleep) -> bool:
        """Merge the pending durations into the shared file under the
        lock; returns False (pending kept) when the lock could not be
        acquired within the staleness horizon."""
        with self._lock:
            if not self._pending:
                return True
            pending, self._pending = self._pending, {}
        lock_path = self.path(out_dir) + ".lock"
        os.makedirs(out_dir, exist_ok=True)
        if not self._acquire(lock_path, sleep):
            with self._lock:  # keep the durations for a later flush
                for key, entry in pending.items():
                    self._pending.setdefault(key, entry)
            return False
        try:
            merged = dict(self.load(out_dir))
            merged.update(pending)
            write_json(
                self.path(out_dir),
                {"version": 1, "cells": dict(sorted(merged.items()))},
            )
        finally:
            try:
                os.unlink(lock_path)
            except OSError:
                pass
        return True

    @staticmethod
    def _acquire(lock_path: str, sleep) -> bool:
        deadline = time.monotonic() + HISTORY_LOCK_STALE_S
        while time.monotonic() < deadline:
            try:
                fd = os.open(lock_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                os.write(fd, str(os.getpid()).encode())
                os.close(fd)
                return True
            except FileExistsError:
                try:  # break a stale lock left by a crashed writer
                    age = time.time() - os.path.getmtime(lock_path)
                    if age > HISTORY_LOCK_STALE_S:
                        os.unlink(lock_path)
                        continue
                except OSError:
                    continue  # racer removed it: retry immediately
                sleep(0.02)
        return False


# ---------------------------------------------------------------------------
# deterministic merge artifacts
# ---------------------------------------------------------------------------

def tables_payload(tables: Dict) -> Dict:
    """``tables.json``: every merged group table, canonically encoded —
    the file two campaign runs compare byte-for-byte to prove the
    determinism contract."""
    return {group: table.to_dict() for group, table in tables.items()}


def write_merge_artifacts(
    out_dir: str,
    tables: Dict,
    cell_dumps: List[Dict],
    ops_dumps: List[Dict],
) -> Dict[str, str]:
    """Write the three merge artifacts; returns their paths.

    ``counters.json`` merges the per-cell dumps **only**, in canonical
    cell order — it depends on nothing but the matrix and its results,
    so serial, parallel and distributed runs of the same matrix produce
    identical bytes (the acceptance contract).  ``ops_counters.json``
    additionally folds in the run-shape dumps (``harness.campaign.*``,
    ``harness.dist.*``) that legitimately vary with worker count,
    resume state and placement.
    """
    from repro.telemetry.counters import merge_dumps

    paths = {
        "tables": os.path.join(out_dir, "tables.json"),
        "counters": os.path.join(out_dir, "counters.json"),
        "ops_counters": os.path.join(out_dir, "ops_counters.json"),
    }
    write_json(paths["tables"], tables_payload(tables))
    write_json(paths["counters"], merge_dumps(cell_dumps))
    write_json(paths["ops_counters"], merge_dumps(ops_dumps + cell_dumps))
    return paths
