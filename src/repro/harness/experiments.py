"""One runnable experiment per table/figure of the paper's evaluation.

Every experiment returns an :class:`~repro.harness.results.ExperimentTable`
whose rows are benchmarks and whose columns are the paper's variants; the
benchmark harness in ``benchmarks/`` prints them, and EXPERIMENTS.md records
paper-vs-measured values.

Time scale
----------
The use-case experiments (Figures 12-14) inject the paper's *measured*
microsecond-range constants (fault round trips, handler latencies).  Our
datasets are scaled down from the Parboil defaults to keep Python simulation
tractable, so these constants are divided by ``DEFAULT_TIME_SCALE`` to keep
the dimensionless ratios (fault-handling time vs. kernel time, pending-queue
depths, link occupancy) in the paper's regime.  Pass ``time_scale=1`` to run
with the unscaled constants.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.core import OperandLog, make_scheme
from repro.core.area_power import table2 as area_power_table2
from repro.system import GpuSimulator, GPUConfig, INTERCONNECTS, SimResult
from repro.workloads import HALLOC_NAMES, PARBOIL_NAMES, get_workload

from .results import ExperimentTable

#: divide the paper's microsecond constants by this (see module docstring)
DEFAULT_TIME_SCALE = 8.0

#: subset used by quick (CI) runs
QUICK_PARBOIL = ("lbm", "sgemm", "histo", "spmv")
QUICK_HALLOC = ("alloc-cycle", "quad-tree")


def _run(workload, scheme, *, paging="premapped", config=None, **kw) -> SimResult:
    sim = GpuSimulator(
        kernel=workload.kernel,
        trace=workload.trace(),
        address_space=workload.make_address_space(),
        config=config,
        scheme=scheme,
        paging=paging,
        **kw,
    )
    return sim.run()


def _parboil_names(quick: bool, names: Optional[Sequence[str]]) -> List[str]:
    if names is not None:
        return list(names)
    return list(QUICK_PARBOIL) if quick else list(PARBOIL_NAMES)


# ---------------------------------------------------------------------------
# Table 1
# ---------------------------------------------------------------------------

def run_table1(config: Optional[GPUConfig] = None) -> str:
    """Render the simulation parameters (paper Table 1)."""
    cfg = config if config is not None else GPUConfig()
    rows = cfg.table1()
    width = max(len(k) for k in rows)
    return "\n".join(f"{k:<{width}}  {v}" for k, v in rows.items())


# ---------------------------------------------------------------------------
# Figure 10 — cost of preemptible faults (wd-commit / wd-lastcheck / replay)
# ---------------------------------------------------------------------------

def run_fig10(
    quick: bool = False, workloads: Optional[Sequence[str]] = None
) -> ExperimentTable:
    """Performance of the warp-disable and replay-queue pipelines on
    fault-free runs, normalized to the baseline SM (higher is better)."""
    table = ExperimentTable(
        name="fig10",
        description=(
            "warp disable / replay queue performance normalized to "
            "baseline (no faults)"
        ),
        columns=["wd-commit", "wd-lastcheck", "replay-queue"],
        notes=["paper geomeans: wd-commit 0.84, wd-lastcheck 0.90, "
               "replay-queue 0.94; lbm replay-queue 0.60"],
    )
    for name in _parboil_names(quick, workloads):
        wl = get_workload(name)
        base = _run(wl, make_scheme("baseline")).cycles
        row = [
            base / _run(wl, make_scheme(s)).cycles
            for s in table.columns
        ]
        table.add_row(name, row)
    return table


# ---------------------------------------------------------------------------
# Figure 11 — operand log size sweep
# ---------------------------------------------------------------------------

def run_fig11(
    quick: bool = False,
    workloads: Optional[Sequence[str]] = None,
    sizes: Sequence[int] = (8, 16, 20, 32),
) -> ExperimentTable:
    """Operand-log scheme at several log sizes, normalized to baseline."""
    table = ExperimentTable(
        name="fig11",
        description="operand log performance vs log size (normalized)",
        columns=[f"log-{kb}KB" for kb in sizes],
        notes=["paper geomeans: 8KB 0.966, 16KB 0.992; "
               "lbm improves from 0.60 (replay queue) to 0.97 at 16KB"],
    )
    for name in _parboil_names(quick, workloads):
        wl = get_workload(name)
        base = _run(wl, make_scheme("baseline")).cycles
        row = [base / _run(wl, OperandLog(kb)).cycles for kb in sizes]
        table.add_row(name, row)
    return table


# ---------------------------------------------------------------------------
# Table 2 — operand log area/power
# ---------------------------------------------------------------------------

def run_table2(sizes: Sequence[int] = (8, 16, 20, 32)) -> ExperimentTable:
    """Operand-log area/power overheads (paper Table 2)."""
    table = ExperimentTable(
        name="table2",
        description="operand log area/power overheads (percent)",
        columns=["SM Area", "GPU Area", "SM Power", "GPU Power"],
        notes=["paper: 8KB = 1.04/0.47/1.82/1.28; 32KB = 2.36/1.08/3.38/2.37"],
    )
    for row in area_power_table2(sizes):
        table.add_row(
            f"{row.log_kbytes}KB",
            [row.sm_area_pct, row.gpu_area_pct, row.sm_power_pct,
             row.gpu_power_pct],
        )
    return table


# ---------------------------------------------------------------------------
# Figure 12 — block switching on fault (use case 1)
# ---------------------------------------------------------------------------

def run_fig12(
    quick: bool = False,
    workloads: Optional[Sequence[str]] = None,
    interconnects: Sequence[str] = ("nvlink", "pcie"),
    ideal: bool = True,
    time_scale: float = DEFAULT_TIME_SCALE,
    base_config: Optional[GPUConfig] = None,
) -> ExperimentTable:
    """Speedup of thread-block switching on faults over stall-on-fault
    demand paging (replay-queue pipeline on both sides)."""
    columns = []
    for ic in interconnects:
        columns.append(ic)
        if ideal:
            columns.append(f"{ic}-ideal")
    table = ExperimentTable(
        name="fig12",
        description=(
            "block switching on fault: speedup over no-switching demand "
            "paging (>1 is better)"
        ),
        columns=columns,
        notes=[
            f"time scale 1/{time_scale:g} applied to interconnect constants",
            "paper (NVLink): sgemm +13%, histo +11%, stencil +7%; "
            "mri-gridding 0.85; geomean ~1.0",
        ],
    )
    config = (base_config or GPUConfig()).time_scaled(time_scale)
    for name in _parboil_names(quick, workloads):
        wl = get_workload(name)
        row = []
        for ic_name in interconnects:
            ic = INTERCONNECTS[ic_name].scaled(time_scale)
            base = _run(
                wl, make_scheme("replay-queue"), paging="demand",
                config=config, interconnect=ic,
            ).cycles
            variants = [dict(ideal_switch=False)]
            if ideal:
                variants.append(dict(ideal_switch=True))
            for var in variants:
                cycles = _run(
                    wl, make_scheme("replay-queue"), paging="demand",
                    config=config, interconnect=ic, block_switching=True,
                    **var,
                ).cycles
                row.append(base / cycles)
        table.add_row(name, row)
    return table


# ---------------------------------------------------------------------------
# Figure 13 — local handling of heap (device-malloc) faults (use case 2)
# ---------------------------------------------------------------------------

def run_fig13(
    quick: bool = False,
    workloads: Optional[Sequence[str]] = None,
    interconnects: Sequence[str] = ("nvlink", "pcie"),
    time_scale: float = DEFAULT_TIME_SCALE,
    base_config: Optional[GPUConfig] = None,
) -> ExperimentTable:
    """Speedup of GPU-local handling of first-touch heap faults over CPU
    handling, on the allocator benchmarks."""
    table = ExperimentTable(
        name="fig13",
        description=(
            "local handling of dynamically-allocated-memory faults: "
            "speedup over CPU handling"
        ),
        columns=list(interconnects),
        notes=[
            f"time scale 1/{time_scale:g} applied to interconnect/handler",
            "paper geomeans: NVLink +56%, PCIe +75%",
        ],
    )
    config = (base_config or GPUConfig()).time_scaled(time_scale)
    if workloads is None:
        workloads = QUICK_HALLOC if quick else HALLOC_NAMES
    for name in workloads:
        wl = get_workload(name)
        row = []
        for ic_name in interconnects:
            ic = INTERCONNECTS[ic_name].scaled(time_scale)
            base = _run(
                wl, make_scheme("replay-queue"), paging="demand-heap",
                config=config, interconnect=ic,
            ).cycles
            local = _run(
                wl, make_scheme("replay-queue"), paging="demand-heap",
                config=config, interconnect=ic, local_handling=True,
            ).cycles
            row.append(base / local)
        table.add_row(name, row)
    return table


# ---------------------------------------------------------------------------
# Figure 14 — local handling of output-page faults (use case 2)
# ---------------------------------------------------------------------------

def run_fig14(
    quick: bool = False,
    workloads: Optional[Sequence[str]] = None,
    interconnects: Sequence[str] = ("nvlink", "pcie"),
    time_scale: float = DEFAULT_TIME_SCALE,
    base_config: Optional[GPUConfig] = None,
) -> ExperimentTable:
    """Speedup of GPU-local handling of first-touch faults to kernel output
    pages over CPU handling, on the Parboil suite."""
    table = ExperimentTable(
        name="fig14",
        description=(
            "local handling of output-page faults: speedup over CPU handling"
        ),
        columns=list(interconnects),
        notes=[
            f"time scale 1/{time_scale:g} applied to interconnect/handler",
            "paper geomeans: NVLink +5%, PCIe +8%; lbm and histo largest",
        ],
    )
    config = (base_config or GPUConfig()).time_scaled(time_scale)
    for name in _parboil_names(quick, workloads):
        wl = get_workload(name)
        row = []
        for ic_name in interconnects:
            ic = INTERCONNECTS[ic_name].scaled(time_scale)
            # Full demand paging on both sides: input migrations keep the
            # CPU/link busy, which is exactly the contention that handling
            # the (first-touch) output faults on the GPU avoids.
            base = _run(
                wl, make_scheme("replay-queue"), paging="demand",
                config=config, interconnect=ic,
            ).cycles
            local = _run(
                wl, make_scheme("replay-queue"), paging="demand",
                config=config, interconnect=ic, local_handling=True,
            ).cycles
            row.append(base / local)
        table.add_row(name, row)
    return table


# ---------------------------------------------------------------------------
# Scalability (Section 5.5): scheme gap vs number of SMs
# ---------------------------------------------------------------------------

def run_scalability(
    workload: str = "lbm",
    sm_counts: Sequence[int] = (8, 16, 32),
    schemes: Sequence[str] = ("wd-commit", "wd-lastcheck", "replay-queue"),
) -> ExperimentTable:
    """Ablation for the paper's scalability discussion: normalized scheme
    performance as the GPU grows."""
    table = ExperimentTable(
        name="scalability",
        description=f"{workload}: scheme performance vs number of SMs",
        columns=list(schemes),
    )
    wl = get_workload(workload)
    for num_sms in sm_counts:
        config = GPUConfig().with_(num_sms=num_sms)
        base = _run(wl, make_scheme("baseline"), config=config).cycles
        row = [
            base / _run(wl, make_scheme(s), config=config).cycles
            for s in schemes
        ]
        table.add_row(f"{num_sms} SMs", row)
    return table


ALL_EXPERIMENTS = {
    "fig10": run_fig10,
    "fig11": run_fig11,
    "table2": run_table2,
    "fig12": run_fig12,
    "fig13": run_fig13,
    "fig14": run_fig14,
}

#: experiments whose rows are *not* benchmarks (table2's rows are operand
#: log sizes) — the campaign runner cannot shard these per workload
UNSHARDED_EXPERIMENTS = frozenset({"table2"})


def experiment_workloads(
    name: str,
    quick: bool = False,
    workloads: Optional[Sequence[str]] = None,
) -> Optional[List[str]]:
    """The per-workload shard axis of experiment ``name``: the benchmark
    rows it would produce, in row order — the campaign runner cuts one
    cell per entry and merges shard tables back in this exact order, so
    a parallel run is bit-identical to the serial one.  ``None`` for
    experiments that don't iterate over workloads (see
    ``UNSHARDED_EXPERIMENTS``) and for unknown/custom experiments."""
    if name in UNSHARDED_EXPERIMENTS or name not in ALL_EXPERIMENTS:
        return None
    if name == "fig13":
        if workloads is not None:
            return list(workloads)
        return list(QUICK_HALLOC) if quick else list(HALLOC_NAMES)
    return _parboil_names(quick, workloads)
