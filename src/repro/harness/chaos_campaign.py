"""Seeded chaos campaigns: fault injection as a harness experiment.

One campaign runs a workload under each requested scheme twice — once
clean, once with a seeded :class:`repro.chaos.ChaosEngine`, a watchdog
and the invariant sanitizer enabled — and checks the property the chaos
layer exists to enforce (docs/ROBUSTNESS.md): **injection perturbs
timing only**.  Page faults are the paper's own recovery mechanism, so a
run whose handler latencies are inflated, whose TLBs are shot down and
whose memory instructions are transiently squashed must still retire
every block and install the identical set of GPU page mappings.

Because the engine draws from a single seeded RNG consumed in simulator
call order, a campaign is bit-reproducible: same workload, scheme and
seed => identical injections, cycles and final state.

Exposed on the CLI as ``python -m repro.harness chaos <workload>`` — and,
through :func:`build_chaos_cells`, as a sharded soak campaign
(``chaos --workloads ... --seeds ...``) executed by the parallel
:class:`repro.harness.runner.CampaignRunner`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.chaos import ChaosConfig, ChaosEngine, Watchdog
from repro.core import make_scheme
from repro.system import GPUConfig, GpuSimulator, INTERCONNECTS
from repro.workloads import get_workload

from .experiments import DEFAULT_TIME_SCALE
from .results import ExperimentTable

#: schemes a default campaign exercises (the paper's preemptible ones)
DEFAULT_CAMPAIGN_SCHEMES = ("wd-commit", "replay-queue", "operand-log")


def architectural_digest(sim: GpuSimulator) -> Tuple:
    """Hashable summary of a finished run's architectural memory state.

    Captures the *architecturally visible* outcome — which virtual pages
    ended GPU-mapped, how many blocks retired, how many instructions
    committed — and deliberately excludes the vpn->ppn assignment:
    injection legitimately reorders fault resolution, and with it which
    physical frame each page happens to land in.
    """
    page_state = sim.address_space.page_state
    return (
        tuple(page_state.gpu_table.mapped_vpns()),
        sum(sm.stats.blocks_completed for sm in sim.sms),
        sum(sm.stats.committed for sm in sim.sms),
    )


def _build_sim(
    wl, scheme_name: str, paging: str, cfg, ic, chaos=None, watchdog=None
) -> GpuSimulator:
    return GpuSimulator(
        kernel=wl.kernel,
        trace=wl.trace(),
        address_space=wl.make_address_space(),
        config=cfg,
        scheme=make_scheme(scheme_name),
        interconnect=ic,
        paging=paging,
        chaos=chaos,
        watchdog=watchdog,
        sanitize=chaos is not None,
    )


def run_chaos_campaign(
    workload: str,
    seed: int = 0,
    schemes: Sequence[str] = DEFAULT_CAMPAIGN_SCHEMES,
    paging: str = "demand",
    interconnect: str = "nvlink",
    time_scale: float = DEFAULT_TIME_SCALE,
    intensity: float = 1.0,
    cycle_budget: Optional[float] = None,
    config: Optional[GPUConfig] = None,
) -> ExperimentTable:
    """Run the seeded chaos campaign; returns the result table.

    For every scheme the table reports the clean cycle count, the chaotic
    cycle count, the slowdown, the number of injections fired, and
    ``state-match`` — 1.0 iff the chaotic run's
    :func:`architectural_digest` equals the clean run's (the campaign's
    pass criterion).  ``intensity`` scales every hook's firing rate
    (see :meth:`repro.chaos.ChaosConfig.scaled`); ``cycle_budget``
    overrides the watchdog's no-progress window.
    """
    wl = get_workload(workload)
    cfg = (config or GPUConfig()).time_scaled(time_scale)
    ic = INTERCONNECTS[interconnect].scaled(time_scale)
    chaos_cfg = ChaosConfig(seed=seed).scaled(intensity)
    table = ExperimentTable(
        name="chaos",
        description=(
            f"{workload} seed={seed} intensity={intensity:g}: "
            "fault injection must perturb timing only"
        ),
        columns=[
            "base-cycles", "chaos-cycles", "slowdown",
            "injections", "state-match",
        ],
        notes=[
            "state-match 1.0 = chaotic run retired every block with the "
            "identical final GPU page mappings and commit count",
        ],
        show_geomean=False,
    )
    for scheme_name in schemes:
        base_sim = _build_sim(wl, scheme_name, paging, cfg, ic)
        base = base_sim.run()
        chaos = ChaosEngine(chaos_cfg)
        watchdog = (
            Watchdog(cycle_budget) if cycle_budget is not None else Watchdog()
        )
        chaos_sim = _build_sim(
            wl, scheme_name, paging, cfg, ic, chaos=chaos, watchdog=watchdog
        )
        chaotic = chaos_sim.run()
        match = architectural_digest(base_sim) == architectural_digest(
            chaos_sim
        )
        table.add_row(
            scheme_name,
            [
                base.cycles,
                chaotic.cycles,
                chaotic.cycles / base.cycles if base.cycles else 0.0,
                float(chaos.total_injections),
                1.0 if match else 0.0,
            ],
        )
    return table


def _stream_digest(device, result) -> Tuple:
    """:func:`architectural_digest` for a multi-kernel (stream) run: the
    device-level GPU page mappings plus the merged per-SM retire/commit
    totals, frame assignment again excluded."""
    page_state = device.aspace.page_state
    return (
        tuple(page_state.gpu_table.mapped_vpns()),
        sum(s.blocks_completed for s in result.sm_stats),
        sum(s.committed for s in result.sm_stats),
    )


def run_stream_chaos_campaign(
    scenario: str = "contention",
    seed: int = 0,
    policy: str = "partition",
    schemes: Sequence[str] = DEFAULT_CAMPAIGN_SCHEMES,
    interconnect: str = "nvlink",
    time_scale: float = DEFAULT_TIME_SCALE,
    intensity: float = 1.0,
    cycle_budget: Optional[float] = None,
) -> ExperimentTable:
    """The chaos campaign for a *multi-kernel stream* run: each scheme's
    scenario kernels are launched one per stream and synchronized clean,
    then again under a seeded engine with the watchdog + sanitizer armed.

    Same table shape and pass criterion as :func:`run_chaos_campaign`:
    injection must perturb timing only — the chaotic overlapped run must
    retire every block of every kernel with the identical final GPU page
    mappings and commit count, under either SM assignment ``policy``
    (``partition``/``interleave``)."""
    from repro.runtime import GpuDevice
    from repro.workloads import get_stream_scenario

    scn = get_stream_scenario(scenario)
    chaos_cfg = ChaosConfig(seed=seed).scaled(intensity)
    table = ExperimentTable(
        name="chaos",
        description=(
            f"streams-{scenario} policy={policy} seed={seed} "
            f"intensity={intensity:g}: fault injection must perturb "
            "timing only"
        ),
        columns=[
            "base-cycles", "chaos-cycles", "slowdown",
            "injections", "state-match",
        ],
        notes=[
            "state-match 1.0 = chaotic overlapped run retired every "
            "block with the identical final GPU page mappings and "
            "commit count",
        ],
        show_geomean=False,
    )

    def _overlapped(scheme_name: str, chaos, watchdog):
        device = GpuDevice(
            scheme=scheme_name, interconnect=interconnect,
            time_scale=time_scale,
        )
        for spec in scn.build(device):
            stream = device.create_stream()
            device.launch(
                spec.kernel, grid=spec.grid, block=spec.block,
                args=spec.args, stream=stream,
            )
        result = device.synchronize(
            policy=policy, chaos=chaos, watchdog=watchdog,
            sanitize=chaos is not None,
        )
        return device, result

    for scheme_name in schemes:
        base_dev, base = _overlapped(scheme_name, None, None)
        chaos = ChaosEngine(chaos_cfg)
        watchdog = (
            Watchdog(cycle_budget) if cycle_budget is not None else Watchdog()
        )
        chaos_dev, chaotic = _overlapped(scheme_name, chaos, watchdog)
        match = _stream_digest(base_dev, base) == _stream_digest(
            chaos_dev, chaotic
        )
        table.add_row(
            scheme_name,
            [
                base.cycles,
                chaotic.cycles,
                chaotic.cycles / base.cycles if base.cycles else 0.0,
                float(chaos.total_injections),
                1.0 if match else 0.0,
            ],
        )
    return table


def build_chaos_cells(
    workloads: Sequence[str],
    seeds: Sequence[int] = (0,),
    schemes: Sequence[str] = DEFAULT_CAMPAIGN_SCHEMES,
    paging: str = "demand",
    interconnect: str = "nvlink",
    time_scale: float = DEFAULT_TIME_SCALE,
    intensity: float = 1.0,
    cycle_budget: Optional[float] = None,
    stream_policies: Sequence[str] = (),
) -> List["CampaignCell"]:
    """The chaos-soak campaign spec: one cell per (workload, seed) pair,
    each running :func:`run_chaos_campaign` over every scheme.

    All cells share the ``chaos`` merge group; row labels get a
    ``<workload>/s<seed>/`` prefix so the per-scheme rows of different
    shards stay distinct in the merged table.  Each cell's kwargs carry
    its ``seed``, so the campaign runner's reseed-on-hang retry policy
    applies shard-locally.

    ``stream_policies`` adds a multi-kernel axis: one extra cell per
    (stream scenario, policy, seed) running
    :func:`run_stream_chaos_campaign` — the overlapped stream runs soak
    under the same injection engine as the single-kernel ones
    (``--stream-policies partition interleave`` on the CLI).
    """
    from .runner import CampaignCell

    cells: List[CampaignCell] = []
    for workload in workloads:
        for seed in seeds:
            cells.append(
                CampaignCell(
                    key=f"chaos/{workload}/s{seed}",
                    fn=run_chaos_campaign,
                    kwargs=dict(
                        workload=workload,
                        seed=seed,
                        schemes=tuple(schemes),
                        paging=paging,
                        interconnect=interconnect,
                        time_scale=time_scale,
                        intensity=intensity,
                        cycle_budget=cycle_budget,
                    ),
                    group="chaos",
                    row_prefix=f"{workload}/s{seed}/",
                )
            )
    if stream_policies:
        from repro.workloads import STREAM_SCENARIO_NAMES

        for scenario in STREAM_SCENARIO_NAMES:
            for policy in stream_policies:
                for seed in seeds:
                    cells.append(
                        CampaignCell(
                            key=f"chaos/streams-{scenario}/{policy}/s{seed}",
                            fn=run_stream_chaos_campaign,
                            kwargs=dict(
                                scenario=scenario,
                                seed=seed,
                                policy=policy,
                                schemes=tuple(schemes),
                                interconnect=interconnect,
                                time_scale=time_scale,
                                intensity=intensity,
                                cycle_budget=cycle_budget,
                            ),
                            group="chaos",
                            row_prefix=f"streams-{scenario}/{policy}"
                                       f"/s{seed}/",
                        )
                    )
    return cells
