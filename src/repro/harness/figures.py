"""Trace-derived figures: counter time series as committed CSV + ASCII.

The telemetry layer already samples every counter and gauge on a fixed
cycle interval (docs/OBSERVABILITY.md); this module turns three of those
series into small, diff-able artifacts that live in ``figures/`` next to
``EXPERIMENTS.md``:

``<workload>-blocks-remaining``
    the occupancy drain curve (``gpu.blocks.remaining``) — how fast the
    grid retires under the scheme;
``<workload>-fault-queue``
    the shared pending-fault queue depth
    (``gpu.fault.pending_queue_depth``) — the contention signal the
    multi-stream experiments reason about;
``<workload>-commit-rate``
    committed instructions per cycle, summed over every SM
    (per-interval delta of ``gpu.sm[*].stats.committed``) — the
    throughput dip while faults are in flight.

Each figure is written twice: ``.csv`` (``time,value`` rows, the
machine-readable series) and ``.txt`` (an ASCII bar chart, readable in
a terminal or a GitHub diff).  The simulator is deterministic, so the
committed artifacts are reproducible byte-for-byte:

    PYTHONPATH=src python -m repro.harness figures

The Chrome trace / counter-dump files the traced run produces as a side
effect go to a temporary directory — only the derived figures are kept.
"""

from __future__ import annotations

import os
import tempfile
from typing import Iterable, List, Sequence, Tuple

Series = List[Tuple[float, float]]

#: (name, description) of every figure the subcommand derives per workload
FIGURES = (
    ("blocks-remaining",
     "occupancy drain: gpu.blocks.remaining over time"),
    ("fault-queue",
     "shared pending-fault queue depth: gpu.fault.pending_queue_depth"),
    ("commit-rate",
     "committed instructions per cycle, summed over all SMs"),
)

#: defaults: one fault-light and one fault-bound workload
DEFAULT_WORKLOADS = ("saxpy", "tlb-thrash")
DEFAULT_SCHEME = "replay-queue"
DEFAULT_PAGING = "demand"
DEFAULT_SAMPLE_INTERVAL = 500.0

#: ASCII chart geometry
BAR_WIDTH = 40
MAX_ROWS = 32


def _summed_sm_series(counters, leaf: str) -> Series:
    """Sum one per-SM stat (``gpu.sm[i].<leaf>``) across SMs, per sample."""
    paths = [
        p for p in counters.paths()
        if p.startswith("gpu.sm[") and p.endswith(leaf)
    ]
    return [
        (t, float(sum(snap.get(p, 0.0) for p in paths)))
        for t, snap in counters.samples
    ]


def _rate(series: Series) -> Series:
    """Per-interval rate of a cumulative series (delta value / delta t)."""
    out: Series = []
    for (t0, v0), (t1, v1) in zip(series, series[1:]):
        dt = t1 - t0
        if dt > 0:
            out.append((t1, (v1 - v0) / dt))
    return out


def _downsample(series: Series, max_rows: int = MAX_ROWS) -> Series:
    """Thin a series to at most ``max_rows`` points, keeping the last."""
    if len(series) <= max_rows:
        return list(series)
    stride = (len(series) + max_rows - 1) // max_rows
    thinned = series[::stride]
    if thinned[-1] != series[-1]:
        thinned.append(series[-1])
    return thinned


def render_csv(series: Series) -> str:
    """``time,value`` rows with a header; ``%g`` keeps integers clean."""
    lines = ["time,value"]
    lines.extend(f"{t:g},{v:g}" for t, v in series)
    return "\n".join(lines) + "\n"


def render_ascii(title: str, series: Series,
                 width: int = BAR_WIDTH, max_rows: int = MAX_ROWS) -> str:
    """A left-axis-time, right-value horizontal bar chart."""
    rows = _downsample(series, max_rows)
    peak = max((v for _, v in rows), default=0.0)
    lines = [title, "=" * len(title)]
    if not rows:
        lines.append("(no samples)")
        return "\n".join(lines) + "\n"
    t_width = max(len(f"{t:g}") for t, _ in rows)
    for t, v in rows:
        bar = "#" * (round(v / peak * width) if peak > 0 else 0)
        lines.append(f"{t:>{t_width}g} |{bar:<{width}s}| {v:g}")
    lines.append(f"peak {peak:g} over {len(series)} samples")
    return "\n".join(lines) + "\n"


def derive_series(workload: str, scheme: str = DEFAULT_SCHEME,
                  paging: str = DEFAULT_PAGING,
                  sample_interval: float = DEFAULT_SAMPLE_INTERVAL,
                  ) -> List[Tuple[str, str, Series]]:
    """Run one traced simulation and derive every figure's series.

    Returns ``[(figure_name, title, series), ...]`` in :data:`FIGURES`
    order.  The traced run's own disk artifacts go to a temp dir.
    """
    from .tracing import run_traced

    with tempfile.TemporaryDirectory(prefix="repro-figures-") as tmp:
        run = run_traced(
            workload, scheme=scheme, paging=paging,
            sample_interval=sample_interval, out_dir=tmp,
        )
    counters = run.telemetry.counters
    tag = f"{workload} ({scheme}/{paging})"
    return [
        ("blocks-remaining",
         f"blocks remaining — {tag}",
         counters.series("gpu.blocks.remaining")),
        ("fault-queue",
         f"pending fault queue depth — {tag}",
         counters.series("gpu.fault.pending_queue_depth")),
        ("commit-rate",
         f"committed insts/cycle (all SMs) — {tag}",
         _rate(_summed_sm_series(counters, ".stats.committed"))),
    ]


def generate_figures(workloads: Iterable[str] = DEFAULT_WORKLOADS,
                     scheme: str = DEFAULT_SCHEME,
                     paging: str = DEFAULT_PAGING,
                     sample_interval: float = DEFAULT_SAMPLE_INTERVAL,
                     out_dir: str = "figures") -> List[str]:
    """Write every figure for every workload; returns the written paths."""
    os.makedirs(out_dir, exist_ok=True)
    written: List[str] = []
    for workload in workloads:
        for name, title, series in derive_series(
            workload, scheme=scheme, paging=paging,
            sample_interval=sample_interval,
        ):
            stem = os.path.join(out_dir, f"{workload}-{name}")
            with open(f"{stem}.csv", "w") as fh:
                fh.write(render_csv(series))
            with open(f"{stem}.txt", "w") as fh:
                fh.write(render_ascii(title, series))
            written.extend([f"{stem}.csv", f"{stem}.txt"])
    return written


def main(argv: Sequence[str] = None) -> int:
    """The ``figures`` subcommand."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.harness figures",
        description=(
            "Derive the committed counter-series figures (CSV + ASCII "
            "chart per figure) from one traced run per workload."
        ),
    )
    parser.add_argument(
        "workloads", nargs="*", default=list(DEFAULT_WORKLOADS),
        help=f"workloads to trace (default: {' '.join(DEFAULT_WORKLOADS)})",
    )
    parser.add_argument("--scheme", default=DEFAULT_SCHEME)
    parser.add_argument("--paging", default=DEFAULT_PAGING)
    parser.add_argument(
        "--sample-interval", type=float, default=DEFAULT_SAMPLE_INTERVAL,
        help="cycles between counter samples (default %(default)s)",
    )
    parser.add_argument(
        "--out", default="figures",
        help="output directory (default: %(default)s)",
    )
    args = parser.parse_args(argv)

    written = generate_figures(
        args.workloads, scheme=args.scheme, paging=args.paging,
        sample_interval=args.sample_interval, out_dir=args.out,
    )
    for path in written:
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
