"""Campaign-throughput benchmark with machine-speed calibration.

The vectorized campaign backend (docs/VECTORIZATION.md) is perf-gated
the same way the hot-loop overhaul is: its headline claim — a 64-config
scheme x seed x latency sweep of lbm at least 3x faster on
``--backend vectorized`` than on ``--backend scalar`` — is recorded in
the committed ``BENCH_campaign.json`` and re-checked by
``benchmarks/test_bench_campaign.py`` in CI.

The methodology mirrors :mod:`repro.harness.hotloop_bench` exactly:
every measurement is normalized against a fixed pure-Python calibration
spin timed on the same interpreter immediately before the run
(``raw_seconds / spin_seconds``), CPU time is used for both halves of
the ratio, and best-of-N removes warmup outliers.  What differs is the
timed region: the dynamic trace and the config-independent
:class:`repro.batch.TraceProfile` are warmed *before* timing and shared
by both backends — they are common infrastructure a sweep pays once —
so the ratio isolates exactly what the backend changes: N scalar
per-record walks versus one numpy program plus the sampled-subset
validation walks the equivalence contract requires.

Regenerate the committed record (from the repo root)::

    PYTHONPATH=src python -m repro.harness campaign --update

Both backends' rows must carry the same digest (the benchmark asserts
it); a digest mismatch means the equivalence contract is broken and no
throughput number is worth recording.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, Optional

from .hotloop_bench import calibration_spin

#: relative tolerance of the CI gate on the normalized scores
GATE_TOLERANCE = 0.25

#: the documented minimum vectorized-over-scalar speedup (the gate floor)
MIN_SPEEDUP = 3.0

#: the benchmark sweep: 4 schemes x 8 seeds x 2 latency scales = 64
#: configurations of one workload — the >=16-config shape the
#: acceptance contract names, on the same workload the hotloop bench
#: uses
CASE = {
    "workload": "lbm",
    "paging": "demand",
    "schemes": ["baseline", "wd-commit", "wd-lastcheck", "replay-queue"],
    "seeds": [0, 1, 2, 3, 4, 5, 6, 7],
    "latency_scales": [100, 300],
}


def _sweep(backend: str, case: Optional[Dict] = None):
    """One sweep of the benchmark case on ``backend`` (validation on,
    as shipped: the vectorized number must include its contract cost)."""
    from repro.batch import run_sweep

    case = case or CASE
    return run_sweep(
        case["workload"],
        schemes=tuple(case["schemes"]),
        seeds=tuple(case["seeds"]),
        latency_scales=tuple(case["latency_scales"]),
        paging=case["paging"],
        backend=backend,
    )


def warm_case(case: Optional[Dict] = None) -> None:
    """Build the shared infrastructure both backends reuse: the cached
    dynamic trace, the config-independent profile, and the compiled
    per-scheme cost kernels (sympy lambdify is a one-off compile cost,
    cached process-wide — not a per-sweep cost either backend pays)."""
    from repro.batch import build_profile, cost_vector, warp_cost_fn

    case = case or CASE
    build_profile(case["workload"], case["paging"])
    for scheme in case["schemes"]:
        cost_vector(scheme)
        warp_cost_fn(scheme)


def measure_backend(
    backend: str, repeats: int = 3, case: Optional[Dict] = None
) -> Dict:
    """Best-of-``repeats`` normalized measurement of one backend.

    Spins and sweeps alternate (spin, sweep, spin, sweep, ...) so a load
    shift mid-measurement biases both halves of the ratio the same way;
    the profile is warmed before the first spin (see module docstring).
    """
    case = case or CASE
    warm_case(case)
    runs = []
    spins = []
    digest = None
    for _ in range(max(1, repeats)):
        spins.append(calibration_spin())
        t0 = time.process_time()
        table = _sweep(backend, case)
        runs.append(time.process_time() - t0)
        digest = table.notes[0]
    best_run = min(runs)
    best_spin = min(spins)
    configs = (
        len(case["schemes"]) * len(case["seeds"])
        * len(case["latency_scales"])
    )
    return {
        "backend": backend,
        "raw_seconds": round(best_run, 4),
        "spin_seconds": round(best_spin, 4),
        "normalized": round(best_run / best_spin, 4),
        "configs_per_spin": round(configs / (best_run / best_spin), 1),
        "repeats": max(1, repeats),
        "digest": digest,
    }


def measure(repeats: int = 3, case: Optional[Dict] = None) -> Dict:
    """Measure both backends on the benchmark case and fold the record.

    Asserts digest equality between the backends (the equivalence
    contract) before reporting the speedup.
    """
    case = case or CASE
    scalar = measure_backend("scalar", repeats, case)
    vectorized = measure_backend("vectorized", repeats, case)
    if scalar["digest"] != vectorized["digest"]:
        raise RuntimeError(
            "backend digests diverged: "
            f"{scalar['digest']!r} != {vectorized['digest']!r}"
        )
    configs = (
        len(case["schemes"]) * len(case["seeds"])
        * len(case["latency_scales"])
    )
    return {
        "case": {**{k: v for k, v in case.items()}, "configs": configs},
        "scalar": scalar,
        "vectorized": vectorized,
        "speedup": round(
            scalar["normalized"] / vectorized["normalized"], 2
        ),
    }


def bench_path() -> str:
    """Committed location of the benchmark record (repo root)."""
    here = os.path.dirname(os.path.abspath(__file__))
    root = os.path.dirname(os.path.dirname(os.path.dirname(here)))
    return os.path.join(root, "BENCH_campaign.json")


def load_record(path: Optional[str] = None) -> Dict:
    """Read the committed benchmark record."""
    with open(path or bench_path()) as fh:
        return json.load(fh)


def save_record(record: Dict, path: Optional[str] = None) -> str:
    """Write the benchmark record (sorted keys, trailing newline)."""
    path = path or bench_path()
    with open(path, "w") as fh:
        json.dump(record, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return path


def main(argv=None) -> int:
    """The ``campaign`` subcommand: measure, print, optionally update."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.harness campaign",
        description=(
            "Calibration-normalized campaign-throughput benchmark: the "
            "64-config benchmark sweep on the scalar and the vectorized "
            "backend (docs/VECTORIZATION.md); gates the committed "
            "BENCH_campaign.json."
        ),
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--update", action="store_true",
        help="write the measurement as BENCH_campaign.json",
    )
    parser.add_argument(
        "--json", metavar="FILE",
        help="also write the measurement (plus the committed record, "
             "when present) to FILE — used by the nightly CI artifact",
    )
    args = parser.parse_args(argv)

    rec = measure(args.repeats)
    for backend in ("scalar", "vectorized"):
        b = rec[backend]
        print(
            f"campaign {backend:10s} [{rec['case']['workload']}/"
            f"{rec['case']['paging']} x{rec['case']['configs']}]: "
            f"raw={b['raw_seconds']}s spin={b['spin_seconds']}s "
            f"normalized={b['normalized']} "
            f"configs/spin={b['configs_per_spin']}"
        )
    print(f"speedup vectorized vs scalar: {rec['speedup']:.2f}x "
          f"(gate floor {MIN_SPEEDUP}x)")
    if args.update:
        record = {"schema": 1, **rec}
        path = save_record(record)
        print(f"updated {path}")
    if args.json:
        try:
            committed = load_record()
        except FileNotFoundError:
            committed = None
        with open(args.json, "w") as fh:
            json.dump({"committed": committed, "measured": rec}, fh,
                      indent=1, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
