"""End-to-end hot-loop benchmark with machine-speed calibration.

The hot-loop overhaul (docs/PERFORMANCE.md) is perf-gated: its headline
claim — lbm/demand end-to-end (trace generation + timing simulation) at
least 2x faster than the pre-overhaul tree — is recorded in the committed
``BENCH_timing.json`` and re-checked by ``benchmarks/test_bench_hotloop.py``
in CI.

Raw wall/CPU seconds are useless as a committed threshold: CI runners and
developer machines differ by multiples, and even one machine varies run to
run.  Every measurement here is therefore *normalized*: the benchmark times
a fixed pure-Python calibration spin on the same interpreter immediately
before the workload, and reports ``raw_seconds / spin_seconds`` — "how many
calibration spins would have fit in this run".  That ratio tracks the
simulator's algorithmic cost, not the host's clock speed, so one committed
number can gate every machine with a modest tolerance band.

CPU time (``time.process_time``) is used instead of wall time for both
halves of the ratio, which removes scheduler noise from co-tenant load;
best-of-N (default 3) removes cache-warmup and GC outliers.

Regenerate the committed ``after`` entry (from the repo root)::

    PYTHONPATH=src python -m repro.harness hotloop --update

The ``before`` entry is a measurement of the pre-overhaul tree with this
exact procedure; regenerating it requires checking out that tree (see
BENCH_timing.json's ``before.commit``) — never overwrite it from an
optimized tree.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, Optional

#: calibration spin iterations — sized so one spin takes O(100ms), long
#: enough to be timed stably, short enough to repeat
SPIN_N = 2_000_000

#: relative tolerance of the CI gate on the normalized score
GATE_TOLERANCE = 0.25

#: the benchmark case the headline number is measured on
CASE = {"workload": "lbm", "scheme": "baseline", "paging": "demand"}


def calibration_spin() -> float:
    """CPU seconds for the fixed pure-Python spin (the ratio denominator).

    Deliberately plain interpreter work (integer arithmetic, attribute-free
    loop) so it scales with CPython dispatch speed the same way the
    simulator's hot loops do."""
    t0 = time.process_time()
    acc = 0
    for i in range(SPIN_N):
        acc += i ^ (acc & 0xFFFF)
    if acc == -1:  # pragma: no cover - keeps the loop from being elided
        raise AssertionError
    return time.process_time() - t0


def run_case_e2e(case: Optional[Dict] = None) -> Dict:
    """One *end-to-end* run: fresh workload, trace generation, simulator
    construction and timed run — the full pipeline a sweep pays per cell.

    A fresh (uncached) workload instance is used so trace generation is
    actually measured; memoized decode/coalesce caches on a shared instance
    would otherwise leak work across repeats."""
    from repro.core import make_scheme
    from repro.system import GpuSimulator
    from repro.workloads import WorkloadRegistry  # noqa: F401 (API check)
    from repro.workloads.parboil import PARBOIL
    from repro.workloads.micro import MICRO

    case = case or CASE
    name = case["workload"]
    registry = PARBOIL if name in PARBOIL.names() else MICRO
    t0 = time.process_time()
    wl = registry.fresh(name)
    trace = wl.trace()
    sim = GpuSimulator(
        kernel=wl.kernel,
        trace=trace,
        address_space=wl.make_address_space(),
        scheme=make_scheme(case["scheme"]),
        paging=case.get("paging", "demand"),
    )
    result = sim.run()
    raw = time.process_time() - t0
    return {
        "raw_seconds": raw,
        "cycles": result.cycles,
        "dynamic_instructions": result.dynamic_instructions,
    }


def measure(repeats: int = 3, case: Optional[Dict] = None) -> Dict:
    """Best-of-``repeats`` normalized measurement of the benchmark case.

    Spins and runs alternate (spin, run, spin, run, ...) so a load shift
    mid-measurement biases both halves of the ratio the same way."""
    runs = []
    spins = []
    cycles = dyn = None
    for _ in range(max(1, repeats)):
        spins.append(calibration_spin())
        rec = run_case_e2e(case)
        runs.append(rec["raw_seconds"])
        cycles, dyn = rec["cycles"], rec["dynamic_instructions"]
    best_run = min(runs)
    best_spin = min(spins)
    return {
        "case": dict(case or CASE),
        "raw_seconds": round(best_run, 4),
        "spin_seconds": round(best_spin, 4),
        "normalized": round(best_run / best_spin, 4),
        "repeats": max(1, repeats),
        "cycles": cycles,
        "dynamic_instructions": dyn,
    }


def bench_path() -> str:
    """Committed location of the benchmark record (repo root)."""
    here = os.path.dirname(os.path.abspath(__file__))
    root = os.path.dirname(os.path.dirname(os.path.dirname(here)))
    return os.path.join(root, "BENCH_timing.json")


def load_record(path: Optional[str] = None) -> Dict:
    with open(path or bench_path()) as fh:
        return json.load(fh)


def save_record(record: Dict, path: Optional[str] = None) -> str:
    path = path or bench_path()
    with open(path, "w") as fh:
        json.dump(record, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return path


def main(argv=None) -> int:
    """The ``hotloop`` subcommand: measure, print, optionally update."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.harness hotloop",
        description=(
            "Calibration-normalized end-to-end hot-loop benchmark "
            "(docs/PERFORMANCE.md); gates the committed BENCH_timing.json."
        ),
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--update", action="store_true",
        help="write the measurement as BENCH_timing.json's 'after' entry",
    )
    parser.add_argument(
        "--json", metavar="FILE",
        help="also write the measurement (plus the committed record, when "
        "present) to FILE — used by the nightly CI artifact",
    )
    args = parser.parse_args(argv)

    rec = measure(args.repeats)
    print(
        f"hotloop e2e [{rec['case']['workload']}/{rec['case']['paging']}]: "
        f"raw={rec['raw_seconds']}s spin={rec['spin_seconds']}s "
        f"normalized={rec['normalized']} cycles={rec['cycles']}"
    )
    try:
        record = load_record()
    except FileNotFoundError:
        record = {"schema": 1}
    before = record.get("before")
    if before:
        speedup = before["normalized"] / rec["normalized"]
        print(f"speedup vs before: {speedup:.2f}x "
              f"(before normalized={before['normalized']})")
    if args.update:
        record["after"] = rec
        path = save_record(record)
        print(f"updated {path}")
    if args.json:
        with open(args.json, "w") as fh:
            json.dump({"committed": record, "measured": rec}, fh,
                      indent=1, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
