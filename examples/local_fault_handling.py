#!/usr/bin/env python
"""Use case 2 demo: handling first-touch page faults on the GPU itself.

Runs the quad-tree allocator benchmark (device-side malloc -> lazily backed
heap pages) with faults handled by the CPU driver vs. by a handler running
on the faulting SM, and reports the throughput win (paper Section 4.2 /
Figure 13).

Run:  python examples/local_fault_handling.py
"""

from repro.core import make_scheme
from repro.harness import DEFAULT_TIME_SCALE
from repro.system import GPUConfig, GpuSimulator, INTERCONNECTS
from repro.workloads import get_workload


def simulate(wl, config, interconnect, local):
    sim = GpuSimulator(
        kernel=wl.kernel,
        trace=wl.trace(),
        address_space=wl.make_address_space(),
        config=config,
        scheme=make_scheme("replay-queue"),
        paging="demand-heap",
        interconnect=interconnect,
        local_handling=local,
    )
    return sim.run()


def main():
    ts = DEFAULT_TIME_SCALE
    config = GPUConfig().time_scaled(ts)
    wl = get_workload("quad-tree")
    print(f"quad-tree: every level allocates its children with device "
          f"malloc;\nfirst stores to fresh heap granules fault "
          f"(handler latency: CPU {INTERCONNECTS['nvlink'].alloc_cost/1000:.0f}us"
          f" unloaded vs GPU {GPUConfig().gpu_handler_latency/1000:.0f}us)\n")

    for ic_name in ("nvlink", "pcie"):
        ic = INTERCONNECTS[ic_name].scaled(ts)
        cpu = simulate(wl, config, ic, local=False)
        gpu = simulate(wl, config, ic, local=True)
        fs = gpu.fault_stats
        print(f"[{ic_name}] CPU handling: {cpu.cycles:9.0f} cycles | "
              f"GPU-local: {gpu.cycles:9.0f} cycles "
              f"({fs.handled_locally} faults handled on-SM) "
              f"-> speedup {cpu.cycles / gpu.cycles:.2f}x")
    print("\nDespite the 10x higher per-fault latency, local handling wins "
          "on throughput:\nthe faults no longer serialize on the "
          "interconnect and the single CPU handler.")


if __name__ == "__main__":
    main()
