#!/usr/bin/env python
"""Telemetry tour: trace a run, inspect events and counters, write files.

Runs saxpy under on-demand paging with telemetry enabled, then shows the
three ways to consume the data: the event histogram, the hierarchical
counter views (snapshot / rollup / glob aggregate / time series), and
the on-disk artifacts (Chrome trace_event JSON for Perfetto + counter
dump).  See docs/OBSERVABILITY.md for the full story.

Run:  python examples/telemetry_tour.py
"""

from repro.core import make_scheme
from repro.system import GpuSimulator
from repro.telemetry import Telemetry, ev
from repro.workloads import get_workload


def main():
    wl = get_workload("saxpy")
    tel = Telemetry(sample_interval=500)
    sim = GpuSimulator(
        kernel=wl.kernel,
        trace=wl.trace(),
        address_space=wl.make_address_space(),
        scheme=make_scheme("replay-queue"),
        paging="demand",
        telemetry=tel,
    )
    result = sim.run()
    print(f"saxpy/replay-queue/demand: {result.cycles:.0f} cycles, "
          f"{tel.tracer.recorded} events recorded "
          f"({tel.tracer.dropped} dropped)\n")

    print("event histogram:")
    for name, count in sorted(tel.tracer.names().items()):
        print(f"  {name:<18} {count}")

    print("\nfirst three page faults (vpn, fault group, detecting SM):")
    raises = [r for r in tel.tracer.events() if r[0] == ev.EV_FAULT_RAISE]
    for name, _ph, ts, _dur, _tid, args in raises[:3]:
        print(f"  cycle {ts:6.0f}  {args}")

    print("\nper-SM issue-stall attribution (glob aggregate):")
    agg = tel.counters.aggregate
    for leaf in ("cycles", "fault", "scoreboard"):
        total = agg(f"gpu.sm[*].warp_stall.{leaf}")
        print(f"  warp_stall.{leaf:<11} {total:8.0f}")

    print("\nTLB and fault-controller counters:")
    print(tel.counters.render("gpu.tlb.l2.*"))
    print(tel.counters.render("gpu.tlb.miss"))
    print(tel.counters.render("gpu.fault.faults_raised"))

    sampled = tel.counters.series("gpu.fault.faults_raised")
    print("\nfaults raised over time (sampled every 500 cycles):")
    for t, v in sampled:
        print(f"  cycle {t:6.0f}  {v:.0f}")

    paths = tel.write("traces/telemetry-tour")
    print(f"\nwrote {paths['trace']} — open it in chrome://tracing "
          "or https://ui.perfetto.dev")
    print(f"wrote {paths['counters']} — flat values, rollup tree, samples")


if __name__ == "__main__":
    main()
