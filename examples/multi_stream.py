#!/usr/bin/env python
"""Multi-kernel streams demo: two kernels contending on the fault queue.

Launches two fault-bound ``tlb-thrash`` kernels on separate streams of one
GpuDevice, so both are resident concurrently and their migrate faults share
the single global pending-fault queue.  Prints the per-stream cycle/fault
summary and compares the overlapped makespan against running the same two
kernels back to back (see docs/CONCURRENCY.md).

Run:  python examples/multi_stream.py
"""

from repro.runtime import GpuDevice
from repro.workloads import MICRO


def stage(device, tag):
    """Allocate a fresh tlb-thrash input/output pair on ``device``."""
    wl = MICRO.fresh("tlb-thrash")
    span = (wl.iters + 1) * wl.num_warps * wl.PAGE_STRIDE
    src = device.malloc_managed(span, name=f"in-{tag}")
    out = device.malloc_managed(wl.num_threads * 4, name=f"out-{tag}")
    # Host writes leave the pages CPU-dirty: the first GPU touch of each
    # page raises a migrate fault.
    device.fill(src, [float(i % 97) for i in range(span // 4)])
    return wl, src, out


def main():
    # -- serial baseline: the same two kernels, one after the other ------
    dev = GpuDevice(scheme="replay-queue", time_scale=8.0)
    serial = 0
    for tag in ("a", "b"):
        wl, src, out = stage(dev, tag)
        res = dev.launch(wl.kernel, grid=wl.grid_dim, block=wl.block_dim,
                         args=(src, out))
        serial += res.cycles
        print(f"serial {tag}: {res.cycles:8.0f} cycles, "
              f"{res.sim.fault_stats.faults_raised} faults")

    # -- overlapped: one stream per kernel, a single synchronize ---------
    dev2 = GpuDevice(scheme="replay-queue", time_scale=8.0)
    handles = []
    for tag in ("a", "b"):
        wl, src, out = stage(dev2, tag)
        stream = dev2.create_stream()
        handles.append(stream.launch(wl.kernel, grid=wl.grid_dim,
                                     block=wl.block_dim, args=(src, out)))
    result = dev2.synchronize()

    print(f"\noverlapped run: makespan {result.cycles:.0f} cycles, "
          f"{result.fault_stats.faults_raised} faults raised, "
          f"{result.stolen_blocks} blocks stolen across streams")
    for k in result.kernels:
        print(f"  stream {k.stream} ({k.kernel_name}): done at cycle "
              f"{k.cycles:.0f}, {k.faults_raised} faults in "
              f"{k.fault_groups} groups")
    for h in handles:
        assert h.done and h.cycles == h.result.cycles

    print(f"\nserial sum {serial:.0f} vs overlapped makespan "
          f"{result.cycles:.0f} -> speedup {serial / result.cycles:.3f}x")


if __name__ == "__main__":
    main()
