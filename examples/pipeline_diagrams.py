#!/usr/bin/env python
"""Print the paper's pipeline timing diagrams (Figures 3, 4, 6 and 7):
the 4-instruction example program under each preemptible-exception scheme.

Run:  python examples/pipeline_diagrams.py
"""

from repro.harness.diagrams import render_all

if __name__ == "__main__":
    print(render_all())
    print()
    print("Legend: F fetch, I issue, O operand read, E execute, C commit,")
    print("        . issue stall.  The warp-disable gap after a load and")
    print("        the delayed issue of D (replay queue) are the paper's")
    print("        Figures 4 and 6; the operand log restores Figure 3's")
    print("        baseline timing.")
