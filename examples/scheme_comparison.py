#!/usr/bin/env python
"""Compare all preemptible-exception pipeline schemes on one benchmark.

Reproduces a slice of Figures 10 and 11 on lbm — the paper's most
scheme-sensitive kernel (8-warp occupancy, ILP-dependent) — and prints the
area/power bill of the operand-log variants (Table 2).

Run:  python examples/scheme_comparison.py [benchmark]
"""

import sys

from repro.core import OperandLog, make_scheme
from repro.core.area_power import overheads
from repro.system import GpuSimulator
from repro.workloads import get_workload


def simulate(wl, scheme):
    sim = GpuSimulator(
        kernel=wl.kernel,
        trace=wl.trace(),
        address_space=wl.make_address_space(),
        scheme=scheme,
        paging="premapped",
    )
    return sim.run()


def main():
    name = sys.argv[1] if len(sys.argv) > 1 else "lbm"
    wl = get_workload(name)
    print(f"benchmark: {name} "
          f"({wl.trace().dynamic_instructions()} dynamic instructions)\n")

    base = simulate(wl, make_scheme("baseline")).cycles
    print(f"{'scheme':18s} {'cycles':>10s} {'vs baseline':>12s} "
          f"{'GPU area':>9s} {'GPU power':>10s}")
    print(f"{'baseline':18s} {base:10.0f} {1.0:12.3f} {'-':>9s} {'-':>10s}")
    for s in ("wd-commit", "wd-lastcheck", "replay-queue"):
        cycles = simulate(wl, make_scheme(s)).cycles
        print(f"{s:18s} {cycles:10.0f} {base / cycles:12.3f} "
              f"{'0%':>9s} {'0%':>10s}")
    for kb in (8, 16, 32):
        cycles = simulate(wl, OperandLog(kb)).cycles
        bill = overheads(kb)
        print(f"{f'operand-log-{kb}KB':18s} {cycles:10.0f} "
              f"{base / cycles:12.3f} {bill.gpu_area_pct:8.2f}% "
              f"{bill.gpu_power_pct:9.2f}%")


if __name__ == "__main__":
    main()
