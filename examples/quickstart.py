#!/usr/bin/env python
"""Quickstart: write a kernel in the DSL, execute it functionally, then
simulate its timing under the baseline and a preemptible-exception scheme.

Run:  python examples/quickstart.py
"""

from repro.core import make_scheme
from repro.functional import Interpreter, Launch
from repro.isa import Imm, KernelBuilder, R
from repro.system import GpuSimulator
from repro.vm import AddressSpace, SegmentKind, SparseMemory

N_BLOCKS, BLOCK = 32, 128
N = N_BLOCKS * BLOCK


def build_saxpy():
    """y[i] = a * x[i] + y[i], written in the kernel-builder DSL."""
    kb = KernelBuilder("saxpy", regs_per_thread=12)
    kb.global_thread_id(R(0))
    kb.imad(R(1), R(0), Imm(4), kb.param(0))  # &x[i]
    kb.imad(R(2), R(0), Imm(4), kb.param(1))  # &y[i]
    kb.ld_global(R(3), R(1))
    kb.ld_global(R(4), R(2))
    kb.ffma(R(5), R(3), kb.param(2), R(4))
    kb.st_global(R(2), R(5))
    kb.exit()
    return kb.build()


def main():
    kernel = build_saxpy()

    # --- set up the virtual address space and input data -----------------
    aspace = AddressSpace()
    x = aspace.add_segment("x", N * 4, SegmentKind.INPUT)
    y = aspace.add_segment("y", N * 4, SegmentKind.INOUT)
    memory = SparseMemory()
    memory.fill(x.base, [float(i) for i in range(N)])
    memory.fill(y.base, [1.0] * N)

    # --- functional execution (correctness + dynamic trace) --------------
    launch = Launch(kernel, grid_dim=N_BLOCKS, block_dim=BLOCK,
                    params=[x.base, y.base, 2.0])
    trace = Interpreter(memory=memory).run(launch)
    result = memory.read_array(y.base, 4)
    print(f"functional: y[:4] = {result} "
          f"({trace.dynamic_instructions()} dynamic instructions)")
    assert result == [2.0 * i + 1.0 for i in range(4)]

    # --- timing simulation under two pipeline schemes ---------------------
    for scheme in ("baseline", "replay-queue"):
        sim = GpuSimulator(
            kernel=kernel,
            trace=trace,
            address_space=AddressSpaceCopy(aspace),
            scheme=make_scheme(scheme),
            paging="premapped",
        )
        res = sim.run()
        print(f"{scheme:13s}: {res.cycles:8.0f} cycles, IPC {res.ipc:.2f}")


def AddressSpaceCopy(original):
    """Rebuild the (deterministic) address-space layout with fresh paging
    state — each simulation owns its page tables."""
    aspace = AddressSpace()
    for seg in original.segments():
        aspace.add_segment(seg.name, seg.size, seg.kind)
    return aspace


if __name__ == "__main__":
    main()
