#!/usr/bin/env python
"""Use case 1 demo: context switching thread blocks during page migrations.

Runs sgemm under on-demand paging over NVLink, with and without the local
scheduler that switches out faulted thread blocks, and reports the switch
activity and speedup (paper Section 4.1 / Figure 12).

Run:  python examples/block_switching.py
"""

from repro.core import make_scheme
from repro.harness import DEFAULT_TIME_SCALE
from repro.system import GPUConfig, GpuSimulator, NVLINK
from repro.workloads import get_workload


def simulate(wl, config, interconnect, switching, ideal=False):
    sim = GpuSimulator(
        kernel=wl.kernel,
        trace=wl.trace(),
        address_space=wl.make_address_space(),
        config=config,
        scheme=make_scheme("replay-queue"),
        paging="demand",
        interconnect=interconnect,
        block_switching=switching,
        ideal_switch=ideal,
    )
    return sim.run()


def main():
    ts = DEFAULT_TIME_SCALE
    config = GPUConfig().time_scaled(ts)
    nvlink = NVLINK.scaled(ts)
    wl = get_workload("sgemm")
    print(f"sgemm: grid={wl.grid_dim} blocks, "
          f"{config.blocks_per_sm(wl.kernel, wl.block_dim) * config.num_sms} "
          f"resident -> pending blocks exist to switch in")

    base = simulate(wl, config, nvlink, switching=False)
    print(f"\nno switching   : {base.cycles:9.0f} cycles, "
          f"{base.fault_stats.groups_resolved} fault groups "
          f"({base.fault_stats.migrations} migrations)")

    sw = simulate(wl, config, nvlink, switching=True)
    outs = sum(s.block_switch_outs for s in sw.sm_stats)
    ins = sum(s.block_switch_ins for s in sw.sm_stats)
    extra = sum(s.extra_blocks_fetched for s in sw.sm_stats)
    print(f"block switching: {sw.cycles:9.0f} cycles  "
          f"(switch-outs {outs}, restores {ins}, extra blocks {extra})")
    print(f"speedup: {base.cycles / sw.cycles:.3f}x")

    ideal = simulate(wl, config, nvlink, switching=True, ideal=True)
    print(f"ideal 1-cycle switching: {ideal.cycles:9.0f} cycles "
          f"(speedup {base.cycles / ideal.cycles:.3f}x)")


if __name__ == "__main__":
    main()
