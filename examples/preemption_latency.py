#!/usr/bin/env python
"""Demonstrate the paper's Section 2.4 motivation: under demand paging, a
non-preemptible GPU cannot context switch until every in-flight fault is
serviced, while the preemptible-exception schemes squash and switch
immediately.

Run:  python examples/preemption_latency.py
"""

from repro.core import make_scheme, preemption_latency_experiment
from repro.harness import DEFAULT_TIME_SCALE
from repro.system import GPUConfig, NVLINK
from repro.workloads import get_workload


def main():
    config = GPUConfig().time_scaled(DEFAULT_TIME_SCALE)
    nvlink = NVLINK.scaled(DEFAULT_TIME_SCALE)
    print("preemption request arrives while faults are in flight;")
    print("worst-case context-switch latency across SMs (cycles):\n")
    print(f"{'workload':14s} {'request@':>10s} {'preemptible':>12s} "
          f"{'stall-on-fault':>15s} {'ratio':>7s}")
    for name in ("stream-sum", "sgemm", "lbm"):
        wl = get_workload(name)
        result = preemption_latency_experiment(
            wl, make_scheme("replay-queue"), nvlink, config,
            request_fraction=0.1,
        )
        pre, stall = result["preemptible"], result["stall-on-fault"]
        ratio = stall / max(pre, 1.0)
        print(f"{name:14s} {result['request_time']:10.0f} {pre:12.0f} "
              f"{stall:15.0f} {ratio:7.0f}x")
    print("\nThe stall-on-fault column includes waiting out fault round")
    print("trips; the preemptible column only drains normal in-flight work")
    print("(squashed faulted instructions replay from the saved context).")


if __name__ == "__main__":
    main()
