"""Counter-diff utility tests: structured diffs, globs, thresholds, CLI."""

import json

import pytest

from repro.telemetry.compare import (
    CounterDiff,
    diff_counters,
    diff_files,
    load_counters,
    main,
)


class TestDiffCounters:
    def test_identical_is_clean(self):
        a = {"gpu.tlb.hit": 10, "gpu.tlb.miss": 2}
        diff = diff_counters(a, dict(a))
        assert diff.clean
        assert diff.compared == 2
        assert "identical" in diff.render()

    def test_changed_values_reported(self):
        diff = diff_counters({"x": 10, "y": 5}, {"x": 20, "y": 5})
        assert not diff.clean
        assert [e.path for e in diff.changed] == ["x"]
        entry = diff.changed[0]
        assert entry.delta == 10
        assert entry.pct == pytest.approx(100.0)

    def test_missing_paths_reported(self):
        diff = diff_counters({"only.a": 1}, {"only.b": 2})
        assert diff.only_a == ["only.a"]
        assert diff.only_b == ["only.b"]
        assert not diff.clean

    def test_pattern_restricts_comparison(self):
        a = {"gpu.tlb.hit": 1, "gpu.sm[0].stats.issued": 5}
        b = {"gpu.tlb.hit": 2, "gpu.sm[0].stats.issued": 9}
        diff = diff_counters(a, b, pattern="gpu.tlb.*")
        assert [e.path for e in diff.changed] == ["gpu.tlb.hit"]
        assert diff.compared == 1
        # index brackets are literal in the glob convention
        diff_sm = diff_counters(a, b, pattern="gpu.sm[*].stats.*")
        assert [e.path for e in diff_sm.changed] == ["gpu.sm[0].stats.issued"]

    def test_threshold_suppresses_small_changes(self):
        a = {"x": 1000.0, "y": 1000.0}
        b = {"x": 1001.0, "y": 1200.0}
        diff = diff_counters(a, b, threshold_pct=5.0)
        assert [e.path for e in diff.changed] == ["y"]

    def test_change_from_zero_always_counts(self):
        diff = diff_counters({"x": 0.0}, {"x": 3.0}, threshold_pct=50.0)
        assert [e.path for e in diff.changed] == ["x"]
        assert diff.changed[0].pct is None


class TestFilesAndCli:
    def _write(self, path, counters, full_dump=True):
        payload = (
            {"metadata": {}, "counters": counters, "rollup": {},
             "samples": []}
            if full_dump
            else counters
        )
        path.write_text(json.dumps(payload))
        return str(path)

    def test_diff_files_reads_dump_layout(self, tmp_path):
        a = self._write(tmp_path / "a.json", {"x": 1})
        b = self._write(tmp_path / "b.json", {"x": 2}, full_dump=False)
        diff = diff_files(a, b)
        assert isinstance(diff, CounterDiff)
        assert [e.path for e in diff.changed] == ["x"]

    def test_load_counters_rejects_non_dump(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("[1, 2, 3]")
        with pytest.raises(ValueError):
            load_counters(str(bad))

    def test_cli_exit_codes(self, tmp_path, capsys):
        a = self._write(tmp_path / "a.json", {"x": 1, "y": 2})
        same = self._write(tmp_path / "same.json", {"x": 1, "y": 2})
        differs = self._write(tmp_path / "diff.json", {"x": 1, "y": 9})
        assert main([a, same]) == 0
        assert main([a, differs]) == 1
        out = capsys.readouterr().out
        assert "identical" in out
        assert "y" in out

    def test_cli_pattern_and_threshold_flags(self, tmp_path, capsys):
        a = self._write(tmp_path / "a.json", {"gpu.x": 100, "other": 1})
        b = self._write(tmp_path / "b.json", {"gpu.x": 101, "other": 5})
        assert main([a, b, "--pattern", "gpu.*", "--threshold", "5"]) == 0
        assert main([a, b, "--pattern", "gpu.*"]) == 1

    def test_cli_against_real_traced_run(self, tmp_path, capsys):
        """End to end: two identical traced runs diff clean; a different
        scheme's counters do not."""
        from repro.harness.tracing import run_traced

        run_a = run_traced("saxpy", scheme="replay-queue",
                           out_dir=str(tmp_path / "a"))
        run_b = run_traced("saxpy", scheme="replay-queue",
                           out_dir=str(tmp_path / "b"))
        run_c = run_traced("saxpy", scheme="baseline",
                           out_dir=str(tmp_path / "c"))
        assert main([run_a.paths["counters"], run_b.paths["counters"]]) == 0
        assert main(
            [run_a.paths["counters"], run_c.paths["counters"],
             "--pattern", "gpu.sm[*].stats.*"]
        ) == 1
