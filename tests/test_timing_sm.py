"""SM pipeline timing tests: scoreboards, dual issue, unit conflicts,
barriers, scheme hooks — driven with hand-built traces and a stub memory
subsystem so each behaviour is isolated."""

import pytest

from repro.core import (
    BaselineStallOnFault,
    OperandLog,
    ReplayQueue,
    WarpDisableCommit,
    WarpDisableLastCheck,
)
from repro.functional.trace import BlockTrace, TraceInst, WarpTrace
from repro.isa import Imm, Instruction, Opcode, P, R
from repro.mem.hierarchy import TranslationOutcome
from repro.system import GPUConfig
from repro.timing import EventQueue, SmPipeline


class StubMemSys:
    """Deterministic memory subsystem: fixed translate/complete latencies."""

    def __init__(self, check_latency=5.0, data_latency=40.0, faults=()):
        self.check_latency = check_latency
        self.data_latency = data_latency
        self.fault_vpns = set(faults)
        self.accesses = []

    def translate_access(self, sm_id, addresses, is_store, now):
        self.accesses.append((now, tuple(addresses), is_store))
        from repro.mem.hierarchy import FaultInfo

        vpns = {a >> 12 for a in addresses}
        faults = [
            FaultInfo(vpn=v, detect_time=now + self.check_latency, sm_id=sm_id)
            for v in sorted(vpns & self.fault_vpns)
        ]
        lines = sorted({a // 128 for a in addresses if (a >> 12) not in self.fault_vpns})
        return TranslationOutcome(
            translation_done=now + self.check_latency,
            ready_lines=lines,
            faults=faults,
            num_requests=len(lines) + len(faults),
        )

    def data_access(self, sm_id, lines, is_store, now, is_atomic=False):
        if is_store and not is_atomic:
            return now + 5.0
        return now + self.data_latency

    def replay_after_fault(self, sm_id, addresses, resolved_time):
        from repro.mem.hierarchy import AccessResult

        return AccessResult(
            translation_done=resolved_time + 10,
            completion=resolved_time + 50,
            faults=[],
            num_requests=1,
        )


class StubBlockSource:
    pending = 0

    def next_block(self, sm_id):
        return None


def t_alu(dest, *srcs):
    inst = Instruction(Opcode.FADD, dest=dest, srcs=srcs)
    return TraceInst(pc=0, inst=inst, active=32, addresses=None)


def t_load(dest, addr_reg, addresses):
    inst = Instruction(Opcode.LD_GLOBAL, dest=dest, srcs=(addr_reg,))
    return TraceInst(pc=0, inst=inst, active=32, addresses=tuple(addresses))


def t_store(addr_reg, val_reg, addresses):
    inst = Instruction(Opcode.ST_GLOBAL, srcs=(addr_reg, val_reg))
    return TraceInst(pc=0, inst=inst, active=32, addresses=tuple(addresses))


def t_bar():
    return TraceInst(pc=0, inst=Instruction(Opcode.BAR), active=32, addresses=None)


def t_exit():
    return TraceInst(pc=0, inst=Instruction(Opcode.EXIT), active=32, addresses=None)


def make_sm(warp_traces, scheme=None, memsys=None, config=None, occupancy=4):
    config = config or GPUConfig()
    events = EventQueue()
    sm = SmPipeline(
        sm_id=0,
        config=config,
        events=events,
        memsys=memsys or StubMemSys(),
        fault_ctl=None,
        scheme=scheme or BaselineStallOnFault(),
        block_source=StubBlockSource(),
        occupancy=occupancy,
        context_bytes_per_block=1024,
    )
    btrace = BlockTrace(block_id=0)
    btrace.warps = [
        WarpTrace(warp_id=i, instructions=list(tr))
        for i, tr in enumerate(warp_traces)
    ]
    block = sm.launch_block(btrace, 0.0)
    return sm, events, block


def run_to_completion(sm, events, max_cycles=100_000):
    import math

    cycle = 0.0
    while True:
        events.run_until(cycle)
        if all(w.done for b in sm.blocks for w in b.warps) and not sm.blocks:
            break
        if not sm.blocks:
            break
        if all(w.done for b in sm.blocks for w in b.warps):
            break
        if not sm.sleeping or sm.next_ready_cycle <= cycle:
            sm.try_issue(cycle)
        if not sm.sleeping:
            cycle += 1
        else:
            nxt = events.next_time
            wake = sm.next_ready_cycle
            if nxt is None and wake == math.inf:
                raise AssertionError(f"deadlock at cycle {cycle}")
            if nxt is None or wake < nxt:
                nxt = wake
            cycle = max(cycle + 1, math.ceil(nxt))
        if cycle > max_cycles:
            raise AssertionError("did not finish")
    return cycle


class TestScoreboards:
    def test_raw_blocks_consumer(self):
        """fadd consuming a load's dest cannot issue before the load's data
        returns."""
        trace = [t_load(R(1), R(0), [0]), t_alu(R(2), R(1)), t_exit()]
        sm, events, block = make_sm([trace])
        sm.try_issue(0.0)  # load issues
        sm.try_issue(1.0)
        # fadd is RAW-blocked on R1 until the load commits (~47 cycles)
        assert sm.stats.issued == 1
        run_to_completion(sm, events)
        assert sm.stats.issued == 3

    def test_war_blocks_overwriter_until_operand_read(self):
        """An instruction writing a register still pending-read stalls
        (baseline: until the reader's operand-read stage)."""
        trace = [t_load(R(1), R(4), [0]), t_alu(R(4), R(5)), t_exit()]
        sm, events, block = make_sm([trace])
        sm.try_issue(0.0)
        issued_at = None
        for cycle in range(1, 20):
            events.run_until(float(cycle))
            if not sm.sleeping:
                before = sm.stats.issued
                sm.try_issue(float(cycle))
                if sm.stats.issued > before and issued_at is None:
                    issued_at = cycle
        # baseline releases sources at operand read (issue + 2)
        assert issued_at == pytest.approx(2, abs=1)

    def test_waw_blocks_second_writer(self):
        trace = [t_load(R(1), R(0), [0]), t_alu(R(1), R(5)), t_exit()]
        sm, events, block = make_sm([trace])
        sm.try_issue(0.0)
        sm.try_issue(1.0)
        sm.try_issue(2.0)
        assert sm.stats.issued == 1  # WAW on R1 holds until load commits

    def test_independent_instructions_flow(self):
        trace = [t_load(R(1), R(0), [0]), t_alu(R(2), R(3)), t_exit()]
        sm, events, block = make_sm([trace])
        sm.try_issue(0.0)
        sm.try_issue(1.0)
        assert sm.stats.issued == 2  # dual issue across cycles, no hazard


class TestIssueWidthAndUnits:
    def test_issue_width_two_per_cycle(self):
        traces = [[t_alu(R(1), R(0)), t_exit()] for _ in range(4)]
        sm, events, _ = make_sm(traces)
        issued = sm.try_issue(0.0)
        assert issued == 2  # Table 1: 2 instructions per cycle

    def test_ldst_unit_single_issue(self):
        traces = [[t_load(R(1), R(0), [0]), t_exit()] for _ in range(2)]
        sm, events, _ = make_sm(traces)
        sm.try_issue(0.0)
        assert sm.stats.issued_mem == 1  # one ld/st unit

    def test_math_units_two_per_cycle(self):
        traces = [[t_alu(R(1), R(0)), t_exit()] for _ in range(3)]
        sm, events, _ = make_sm(traces)
        sm.try_issue(0.0)
        assert sm.stats.issued == 2


class TestBarriers:
    def test_barrier_waits_for_all_warps(self):
        traces = [
            [t_bar(), t_alu(R(1), R(0)), t_exit()],
            [t_alu(R(2), R(0)), t_alu(R(3), R(2)), t_bar(),
             t_alu(R(1), R(0)), t_exit()],
        ]
        sm, events, block = make_sm(traces)
        cycles = run_to_completion(sm, events)
        assert sm.stats.blocks_completed == 1

    def test_single_warp_barrier_releases_immediately(self):
        trace = [t_bar(), t_alu(R(1), R(0)), t_exit()]
        sm, events, _ = make_sm([trace])
        run_to_completion(sm, events)
        assert sm.stats.blocks_completed == 1


class TestSchemeHooks:
    def _completion_cycles(self, scheme, trace_builder=None):
        trace = trace_builder() if trace_builder else [
            t_load(R(1), R(0), [0]),
            t_alu(R(2), R(3)),
            t_alu(R(4), R(5)),
            t_exit(),
        ]
        sm, events, _ = make_sm([trace], scheme=scheme)
        return run_to_completion(sm, events)

    def test_wd_commit_slowest(self):
        base = self._completion_cycles(BaselineStallOnFault())
        wd = self._completion_cycles(WarpDisableCommit())
        lastcheck = self._completion_cycles(WarpDisableLastCheck())
        assert wd > lastcheck >= base

    def test_wd_lastcheck_shorter_window_than_commit(self):
        wd = self._completion_cycles(WarpDisableCommit())
        lastcheck = self._completion_cycles(WarpDisableLastCheck())
        assert lastcheck < wd

    def _war_issue_cycle(self, scheme, check_latency):
        """Cycle at which the WAR-dependent ALU issues after a load."""
        trace = [
            t_load(R(1), R(4), [0]),  # reads R4
            t_alu(R(4), R(5)),  # WAR on R4
            t_exit(),
        ]
        memsys = StubMemSys(check_latency=check_latency)
        sm, events, _ = make_sm([trace], scheme=scheme, memsys=memsys)
        sm.try_issue(0.0)
        for cycle in range(1, 200):
            events.run_until(float(cycle))
            before = sm.stats.issued
            sm.try_issue(float(cycle))
            if sm.stats.issued > before:
                return cycle
        raise AssertionError("ALU never issued")

    def test_replay_queue_delays_war_until_last_check(self):
        base = self._war_issue_cycle(BaselineStallOnFault(), check_latency=30)
        rq = self._war_issue_cycle(ReplayQueue(), check_latency=30)
        assert base == pytest.approx(3, abs=1)  # released at operand read
        assert rq >= 30  # released only after the last TLB check

    def test_replay_queue_transparent_without_war(self):
        def indep():
            return [t_load(R(1), R(4), [0]), t_alu(R(6), R(5)), t_exit()]

        assert self._completion_cycles(ReplayQueue(), indep) == (
            self._completion_cycles(BaselineStallOnFault(), indep)
        )

    def test_operand_log_capacity_throttles(self):
        def trace():
            # 8 independent loads in flight
            return [
                t_load(R(i + 1), R(0), [128 * i]) for i in range(8)
            ] + [t_exit()]

        # Tiny log: single 256B entry per block (partition is clamped to
        # 512B = 2 loads) — loads must trickle.
        small = OperandLog(1)
        sm, events, block = make_sm([trace()], scheme=small, occupancy=2)
        assert block.log_capacity == 512
        run_to_completion(sm, events)
        big = OperandLog(64)
        sm2, events2, _ = make_sm([trace()], scheme=big, occupancy=2)
        run_to_completion(sm2, events2)
        # both finish; the small log must not deadlock (and is not faster)
        assert sm.stats.issued == sm2.stats.issued == 9

    def test_log_accounting_returns_to_zero(self):
        trace = [t_load(R(1), R(0), [0]), t_store(R(2), R(3), [128]), t_exit()]
        sm, events, block = make_sm([trace], scheme=OperandLog(16))
        run_to_completion(sm, events)
        assert block.log_used == 0


class TestControlFlow:
    def test_control_instruction_disables_fetch_until_commit(self):
        bra = TraceInst(
            pc=0,
            inst=Instruction(Opcode.BRA, target=0),
            active=32,
            addresses=None,
        )
        trace = [bra, t_alu(R(1), R(0)), t_exit()]
        sm, events, _ = make_sm([trace])
        sm.try_issue(0.0)
        sm.try_issue(1.0)
        assert sm.stats.issued == 1  # fetch held until the branch commits
        run_to_completion(sm, events)
        assert sm.stats.issued == 3


class TestStats:
    def test_commit_counts_match_issue(self):
        trace = [t_alu(R(1), R(0)), t_alu(R(2), R(1)), t_exit()]
        sm, events, _ = make_sm([trace])
        run_to_completion(sm, events)
        assert sm.stats.issued == sm.stats.committed == 3


def _record_issues(sm):
    """Instrument an SM to log (cycle, warp index, opcode) per issue.

    Warps are identified by position in the SM's master warp list — the
    ordering the round-robin pointer is defined over."""
    log = []
    orig = sm._issue

    def spy(warp, tinst, dec, cycle):
        log.append((cycle, sm.warps.index(warp), tinst.inst.op.name))
        return orig(warp, tinst, dec, cycle)

    sm._issue = spy
    return log


def _run_logged(warp_traces, reference=False, **kw):
    sm, events, _ = make_sm(warp_traces, **kw)
    if reference:
        sm.try_issue = sm._try_issue_reference
    log = _record_issues(sm)
    cycles = run_to_completion(sm, events)
    return log, cycles, sm


class TestRoundRobinOrderPinning:
    """Pin the exact issue order of the ready-list fast path: it must equal
    the reference full-scan (`_try_issue_reference`) instruction for
    instruction, including across sleep/wake, barrier releases, and warps
    draining out of the scan."""

    def test_rr_rotation_across_alu_warps(self):
        """4 independent ALU warps, width 2: strict rotation 01/23/01..."""
        traces = [
            [t_alu(R(1), R(0)), t_alu(R(2), R(0)), t_exit()]
            for _ in range(4)
        ]
        log, _, _ = _run_logged(traces)
        per_cycle = {}
        for cycle, slot, _op in log:
            per_cycle.setdefault(cycle, []).append(slot)
        first_cycles = sorted(per_cycle)[:2]
        assert per_cycle[first_cycles[0]] == [0, 1]
        assert per_cycle[first_cycles[1]] == [2, 3]

    def test_fast_path_equals_reference_alu_mix(self):
        traces = [
            [t_alu(R(1), R(0)), t_alu(R(2), R(1)), t_alu(R(3), R(2)), t_exit()],
            [t_alu(R(1), R(0)), t_exit()],
            [t_alu(R(2), R(0)), t_alu(R(3), R(2)), t_exit()],
        ]
        fast, fc, fsm = _run_logged(traces)
        ref, rc, rsm = _run_logged(traces, reference=True)
        assert fast == ref
        assert fc == rc
        assert fsm.stats.issued == rsm.stats.issued

    def test_fast_path_equals_reference_across_sleep_wake(self):
        """Loads put warps to sleep on scoreboard hazards; wake order after
        the data returns must match the reference scan exactly."""
        traces = [
            [t_load(R(1), R(0), [i * 128]), t_alu(R(2), R(1)), t_exit()]
            for i in range(3)
        ] + [[t_alu(R(5), R(4)), t_alu(R(6), R(5)), t_exit()]]
        fast, fc, _ = _run_logged(traces)
        ref, rc, _ = _run_logged(traces, reference=True)
        assert fast == ref
        assert fc == rc

    def test_fast_path_equals_reference_barrier_release(self):
        """Warps reach BAR at different times (skewed by hazard chains);
        post-release issue order must match the reference."""
        traces = [
            [t_alu(R(1), R(0)), t_bar(), t_alu(R(2), R(1)), t_exit()],
            [
                t_alu(R(1), R(0)),
                t_alu(R(2), R(1)),
                t_alu(R(3), R(2)),
                t_bar(),
                t_alu(R(4), R(3)),
                t_exit(),
            ],
            [t_bar(), t_alu(R(7), R(6)), t_exit()],
        ]
        fast, fc, _ = _run_logged(traces)
        ref, rc, _ = _run_logged(traces, reference=True)
        assert fast == ref
        assert fc == rc
        bar_issues = [e for e in fast if e[2] == "BAR"]
        assert len(bar_issues) == 3

    def test_fast_path_equals_reference_when_warps_drain(self):
        """Warps finish at different times; the scan must keep the same RR
        positions for the survivors as the reference (stale-entry skips)."""
        traces = [
            [t_alu(R(1), R(0)), t_exit()],
            [
                t_alu(R(1), R(0)),
                t_alu(R(2), R(1)),
                t_alu(R(3), R(2)),
                t_alu(R(4), R(3)),
                t_exit(),
            ],
            [t_alu(R(1), R(0)), t_alu(R(2), R(1)), t_exit()],
        ]
        fast, fc, _ = _run_logged(traces)
        ref, rc, _ = _run_logged(traces, reference=True)
        assert fast == ref
        assert fc == rc

    def test_fast_path_equals_reference_memory_mix(self):
        """Loads + stores + ALU across warps: exercises the fault-capable
        decode branch, replay-free memory path, and structural LD/ST limits."""
        traces = [
            [
                t_load(R(1), R(0), [0, 128]),
                t_store(R(0), R(1), [256]),
                t_exit(),
            ],
            [t_load(R(2), R(0), [512]), t_alu(R(3), R(2)), t_exit()],
            [t_alu(R(1), R(0)), t_alu(R(2), R(1)), t_exit()],
        ]
        fast, fc, _ = _run_logged(traces)
        ref, rc, _ = _run_logged(traces, reference=True)
        assert fast == ref
        assert fc == rc
