"""Trace serialization round-trips and the sweep utilities."""

import io

import pytest

from repro.core import make_scheme
from repro.functional.serialize import (
    decode_kernel,
    encode_kernel,
    load_trace,
    save_trace,
)
from repro.harness.sweeps import sweep_config, sweep_schemes
from repro.system import GpuSimulator
from repro.workloads import MICRO, get_workload


class TestKernelCodec:
    @pytest.mark.parametrize("name", ["saxpy", "stream-sum", "divergence-tree"])
    def test_roundtrip_structural(self, name):
        kernel = MICRO.fresh(name).kernel
        restored = decode_kernel(encode_kernel(kernel))
        assert len(restored) == len(kernel)
        assert restored.regs_per_thread == kernel.regs_per_thread
        for a, b in zip(kernel.instructions, restored.instructions):
            assert a.op is b.op
            assert a.dest == b.dest
            assert tuple(a.srcs) == tuple(b.srcs)
            assert a.target == b.target and a.reconv == b.reconv
            assert a.offset == b.offset and a.width == b.width
            assert a.guard == b.guard and a.cmp == b.cmp and a.atom == b.atom

    def test_parboil_kernels_roundtrip(self):
        for name in ("lbm", "spmv", "sgemm"):
            kernel = get_workload(name).kernel
            restored = decode_kernel(encode_kernel(kernel))
            restored.validate()
            assert len(restored) == len(kernel)


class TestTraceRoundtrip:
    def test_identical_timing_after_reload(self):
        wl = MICRO.fresh("saxpy")
        trace = wl.trace()
        buf = io.StringIO()
        save_trace(trace, wl.kernel, buf)
        buf.seek(0)
        kernel2, trace2 = load_trace(buf)

        def cycles(kernel, trace):
            sim = GpuSimulator(
                kernel, trace, wl.make_address_space(),
                scheme=make_scheme("replay-queue"), paging="premapped",
            )
            return sim.run().cycles

        assert cycles(kernel2, trace2) == cycles(wl.kernel, trace)

    def test_counts_preserved(self):
        wl = MICRO.fresh("stream-sum")
        trace = wl.trace()
        buf = io.StringIO()
        save_trace(trace, wl.kernel, buf)
        buf.seek(0)
        _, trace2 = load_trace(buf)
        assert trace2.dynamic_instructions() == trace.dynamic_instructions()
        assert (
            trace2.global_memory_instructions()
            == trace.global_memory_instructions()
        )
        assert trace2.touched_pages() == trace.touched_pages()

    def test_file_path_roundtrip(self, tmp_path):
        wl = MICRO.fresh("saxpy")
        path = str(tmp_path / "trace.json")
        save_trace(wl.trace(), wl.kernel, path)
        kernel, trace = load_trace(path)
        assert trace.grid_dim == wl.grid_dim

    def test_version_check(self):
        buf = io.StringIO('{"version": 99}')
        with pytest.raises(ValueError, match="format"):
            load_trace(buf)


class TestSweeps:
    def test_sweep_config_mshrs(self):
        table = sweep_config(
            "mshr-storm", scheme="baseline", field="l1_mshrs",
            values=[8, 64],
        )
        row = table.rows["mshr-storm"]
        assert row[0] == 1.0  # normalized to first point
        assert row[1] > 1.0  # more MSHRs help the storm

    def test_sweep_unknown_field(self):
        with pytest.raises(ValueError, match="no field"):
            sweep_config("saxpy", "baseline", "warp_drive", [1])

    def test_sweep_schemes(self):
        table = sweep_schemes("stream-sum")
        row = table.rows["stream-sum"]
        assert row[0] == 1.0
        assert all(0.3 < v <= 1.05 for v in row)
