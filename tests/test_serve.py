"""Multi-tenant serving-layer tests: admission control, circuit
breakers, the content-addressed result cache, the asyncio service's
retry/backoff + containment behaviour, and the bit-reproducible
virtual-time driver (docs/ROBUSTNESS.md "Serving")."""

import asyncio
import threading

import pytest

from repro.chaos import HangDiagnostic, SimulationHang
from repro.harness.hashing import content_hash
from repro.serve import (
    GpuService,
    QueueFull,
    ResultCache,
    ServiceCore,
    TenantPolicy,
    TenantQuarantined,
    UnknownTenant,
    VirtualTimeDriver,
    containment_experiment,
    execute_request,
    merge_arrivals,
    open_loop_arrivals,
)
from repro.serve.core import CircuitBreaker, percentile
from repro.serve.loadgen import Arrival


def _hang(budget=1_000.0):
    return SimulationHang(
        HangDiagnostic(
            cycle=budget, cycle_budget=budget,
            blocks_remaining=1, committed=0,
        )
    )


def stub_executor(spec):
    """Deterministic fake data plane: cycles derived from the spec,
    ``hang`` raises like a watchdog trip, ``hang_until_reseed`` hangs
    only until the retry path bumps the seed past 1000 (a genuinely
    transient failure), ``faults`` passes a fault tally through."""
    if spec.get("hang"):
        raise _hang(float(spec.get("cycle_budget") or 1_000.0))
    if spec.get("hang_until_reseed") and int(spec.get("seed", 0)) < 1000:
        raise _hang(float(spec.get("cycle_budget") or 1_000.0))
    cycles = 1_000.0 + 100.0 * (int(spec.get("seed", 0)) % 7)
    return {
        "workload": spec.get("workload", "stub"),
        "cycles": cycles,
        "faults_raised": int(spec.get("faults", 0)),
        "state_digest": content_hash(spec),
    }


def _policy(**kw):
    base = dict(
        max_streams=2, max_queue_depth=2, fault_budget=100,
        hang_budget=1, breaker_window=100_000.0, cooldown=10_000.0,
        half_open_probes=1,
    )
    base.update(kw)
    return TenantPolicy(**base)


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 0.99) == 0.0

    def test_nearest_rank(self):
        samples = list(range(1, 101))  # 1..100
        assert percentile(samples, 0.50) == 50
        assert percentile(samples, 0.99) == 99
        assert percentile(samples, 1.0) == 100

    def test_single_sample(self):
        assert percentile([42.0], 0.99) == 42.0


class TestCircuitBreaker:
    def test_hang_budget_trips_and_cooldown_recovers(self):
        br = CircuitBreaker(_policy(hang_budget=1))
        assert br.allow(0.0)
        br.record_hang(10.0)
        assert br.state == CircuitBreaker.CLOSED  # within budget
        br.record_hang(20.0)  # tally 2 > budget 1
        assert br.state == CircuitBreaker.OPEN
        assert not br.allow(25.0)
        # cooldown elapses -> HALF_OPEN admits exactly one probe
        assert br.allow(20.0 + 10_000.0)
        assert br.state == CircuitBreaker.HALF_OPEN
        assert not br.allow(20.0 + 10_000.0)
        br.record_success(30_100.0)
        assert br.state == CircuitBreaker.CLOSED
        # tallies cleared: one new hang stays within budget again
        br.record_hang(30_200.0)
        assert br.state == CircuitBreaker.CLOSED

    def test_fault_budget_trips(self):
        br = CircuitBreaker(_policy(fault_budget=100))
        br.record_faults(60, 0.0)
        assert br.state == CircuitBreaker.CLOSED
        br.record_faults(60, 1.0)  # 120 > 100
        assert br.state == CircuitBreaker.OPEN

    def test_window_expires_old_faults(self):
        br = CircuitBreaker(_policy(fault_budget=100, breaker_window=50.0))
        br.record_faults(80, 0.0)
        br.record_faults(80, 100.0)  # first batch aged out
        assert br.state == CircuitBreaker.CLOSED

    def test_failed_probe_retrips(self):
        br = CircuitBreaker(_policy(hang_budget=0, cooldown=100.0))
        br.record_hang(0.0)
        assert br.state == CircuitBreaker.OPEN
        assert br.allow(200.0)  # half-open probe
        br.record_hang(201.0)
        assert br.state == CircuitBreaker.OPEN
        assert not br.allow(250.0)


class TestServiceCoreAdmission:
    def test_unknown_tenant_is_structured(self):
        core = ServiceCore()
        with pytest.raises(UnknownTenant) as exc:
            core.check_admission("ghost", 0.0)
        assert exc.value.to_dict()["code"] == "unknown-tenant"

    def test_quota_then_queue_then_shed(self):
        core = ServiceCore()
        core.register_tenant("t", _policy(max_streams=1, max_queue_depth=1))
        assert core.acquire_slot("t", 0.0) == "run"
        assert core.acquire_slot("t", 0.0) == "queued"
        with pytest.raises(QueueFull) as exc:
            core.acquire_slot("t", 0.0)
        assert exc.value.code == "queue-full"
        assert "quota" in str(exc.value)
        state = core.tenant("t")
        assert state.rejections == 1
        assert core.counters.value("serve.slo.rejected") == 1

    def test_quarantine_rejects_before_cache(self):
        core = ServiceCore()
        core.register_tenant("t", _policy(hang_budget=0))
        state = core.tenant("t")
        state.inflight = 1
        core.fail("t", 0.0, hang=True)
        with pytest.raises(TenantQuarantined) as exc:
            core.check_admission("t", 1.0)
        d = exc.value.to_dict()
        assert d["code"] == "quarantined"
        assert d["tenant"] == "t"
        assert core.counters.value("serve.slo.quarantines") == 1

    def test_tenant_telemetry_rollups(self):
        core = ServiceCore()
        core.register_tenant("t", _policy())
        core.check_admission("t", 0.0)
        assert core.acquire_slot("t", 0.0) == "run"
        core.complete("t", 5.0, latency_cycles=1234.0, faults=7)
        core.record_cache_hit("t")
        snap = core.counters.snapshot()
        assert snap["serve.tenant[t].submits"] == 1
        assert snap["serve.tenant[t].faults"] == 7
        assert snap["serve.tenant[t].cache_hits"] == 1
        assert snap["serve.tenant[t].p99_cycles"] == 1234.0
        assert snap["serve.slo.completed"] == 1


class TestResultCache:
    def test_key_ignores_dict_order(self):
        a = {"workload": "saxpy", "seed": 3}
        b = {"seed": 3, "workload": "saxpy"}
        assert ResultCache.key(a) == ResultCache.key(b)

    def test_hit_miss_and_stats(self):
        cache = ResultCache(capacity=8)
        key = cache.key({"x": 1})
        assert cache.get(key) is None
        cache.put(key, {"cycles": 1.0})
        assert cache.get(key) == {"cycles": 1.0}
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_lru_eviction(self):
        cache = ResultCache(capacity=2)
        for i in range(3):
            cache.put(f"k{i}", {"i": i})
        assert cache.get("k0") is None  # evicted
        assert cache.get("k2") == {"i": 2}
        assert cache.evictions == 1

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            ResultCache(capacity=0)


def _service(**kw):
    kw.setdefault("isolated", False)
    kw.setdefault("executor", stub_executor)
    kw.setdefault("backoff_base", 0.001)
    return GpuService(**kw)


class TestGpuService:
    def test_execute_then_cache_hit_bit_identical(self):
        service = _service()
        service.register_tenant("t", _policy())
        spec = {"workload": "w", "seed": 3}

        async def run():
            cold = await service.submit("t", spec)
            warm = await service.submit("t", spec)
            return cold, warm

        cold, warm = asyncio.run(run())
        assert cold.ok and not cold.cached and cold.attempts == 1
        assert warm.cached and warm.attempts == 0
        assert warm.value == cold.value  # bit-identical table
        assert service.core.tenant("t").cache_hits == 1

    def test_transient_hang_retried_with_reseed(self):
        service = _service(max_attempts=3)
        service.register_tenant("t", _policy())
        spec = {"workload": "w", "seed": 0, "hang_until_reseed": True}

        res = asyncio.run(service.submit("t", spec))
        assert res.ok
        assert res.attempts == 2  # hung once, reseeded retry succeeded
        assert service.core.tenant("t").retries == 1
        assert service.core.counters.value("serve.slo.retries") == 1

    def test_exhausted_hang_fails_and_quarantines(self):
        service = _service(max_attempts=2)
        service.register_tenant("t", _policy(hang_budget=0))
        spec = {"workload": "w", "hang": True}

        res = asyncio.run(service.submit("t", spec))
        assert not res.ok
        assert res.failure.kind == "SimulationHang"
        assert res.attempts == 2
        state = service.core.tenant("t")
        assert state.hangs == 1
        assert state.breaker.state == CircuitBreaker.OPEN
        with pytest.raises(TenantQuarantined):
            asyncio.run(service.submit("t", {"workload": "w"}))
        assert state.rejections == 1

    def test_queue_full_sheds_structured(self):
        gate = threading.Event()

        def slow_executor(spec):
            gate.wait(timeout=10.0)
            return stub_executor(spec)

        service = _service(executor=slow_executor)
        service.register_tenant(
            "t", _policy(max_streams=1, max_queue_depth=0)
        )

        async def run():
            first = asyncio.create_task(
                service.submit("t", {"workload": "a"})
            )
            await asyncio.sleep(0.05)  # first occupies the only stream
            with pytest.raises(QueueFull):
                await service.submit("t", {"workload": "b"})
            gate.set()
            return await first

        res = asyncio.run(run())
        assert res.ok
        assert service.core.tenant("t").rejections == 1

    def test_one_tenant_quarantined_others_unaffected(self):
        service = _service(max_attempts=1)
        service.register_tenant("storm", _policy(hang_budget=0))
        service.register_tenant("steady", _policy(max_queue_depth=8))
        subs = [("storm", {"workload": "w", "hang": True, "seed": 0})]
        subs += [
            ("steady", {"workload": "w", "seed": i}) for i in range(6)
        ]
        subs += [("storm", {"workload": "w", "seed": 99})]

        async def run():
            # storm's hang first, then everyone else concurrently
            await service.drain(subs[:1])
            return await service.drain(subs[1:])

        results = asyncio.run(run())
        steady = [r for r in results[:-1]]
        assert all(r.ok for r in steady)
        assert isinstance(results[-1], TenantQuarantined)
        assert service.core.tenant("steady").completions == 6
        assert service.core.tenant("steady").rejections == 0


def _arrivals(tenant, specs, gap=1_000.0):
    return [
        Arrival(time=gap * (i + 1), tenant=tenant, seq=i, spec=spec)
        for i, spec in enumerate(specs)
    ]


class TestVirtualTimeDriver:
    def _core(self, tenants):
        core = ServiceCore()
        for name, policy in tenants:
            core.register_tenant(name, policy)
        return core

    def test_latency_includes_queue_wait(self):
        core = self._core([("t", _policy(max_streams=2))])
        driver = VirtualTimeDriver(
            core, num_gpus=1, executor=stub_executor
        )
        # both arrive before the first (1000-cycle) job finishes; the
        # second waits for the single GPU
        specs = [{"workload": "w", "seed": 0}, {"workload": "w", "seed": 7}]
        report = driver.run(_arrivals("t", specs, gap=100.0))
        lat = sorted(core.tenant("t").latencies_cycles)
        assert lat[0] == 1_000.0  # ran immediately
        assert lat[1] == pytest.approx(1_900.0)  # 800 wait + 1000 + 100
        assert report["slo"]["completed"] == 2

    def test_same_seed_same_digest(self):
        def run_once():
            core = self._core([
                ("a", _policy()), ("b", _policy()),
            ])
            streams = [
                open_loop_arrivals(
                    7, name, [{"workload": "w", "seed": s} for s in range(4)],
                    12, 500.0,
                )
                for name in ("a", "b")
            ]
            driver = VirtualTimeDriver(core, executor=stub_executor)
            return driver.run(merge_arrivals(*streams))

        first, second = run_once(), run_once()
        assert first["digest"] == second["digest"]
        assert first == second

    def test_hang_trips_breaker_and_sheds_backlog(self):
        core = self._core([
            ("t", _policy(max_streams=1, max_queue_depth=2, hang_budget=0))
        ])
        driver = VirtualTimeDriver(
            core, num_gpus=1, max_attempts=2, executor=stub_executor
        )
        hang = {"workload": "w", "hang": True, "cycle_budget": 500.0}
        specs = [hang] + [{"workload": "w", "seed": s} for s in (1, 2)]
        report = driver.run(_arrivals("t", specs, gap=10.0))
        # the hang job fails (2 attempts), trips the breaker, and the
        # two queued jobs are shed as structured quarantine rejections
        assert report["slo"]["failed"] == 1
        assert report["slo"]["hangs"] == 1
        assert report["tenants"]["t"]["breaker"] == "open"
        assert report["rejections"]["t"]["quarantined"] == 2
        assert report["slo"]["completed"] == 0

    def test_cache_hits_are_free_and_counted(self):
        core = self._core([("t", _policy())])
        driver = VirtualTimeDriver(core, executor=stub_executor)
        spec = {"workload": "w", "seed": 5}
        report = driver.run(_arrivals("t", [spec, dict(spec)], gap=5_000.0))
        assert report["cached_served"] == 1
        assert report["cache"]["hits"] == 1
        state = core.tenant("t")
        assert sorted(state.latencies_cycles) == [0.0, 1_500.0]


class TestContainmentExperiment:
    def test_contained_and_reproducible_with_stub(self):
        kwargs = dict(
            steady_tenants=2, requests_per_tenant=60, storm_requests=30,
            mean_gap_cycles=2_000.0, storm_cycle_budget=1_000.0,
            executor=stub_executor,
        )
        rep = containment_experiment(seed=3, **kwargs)
        rep2 = containment_experiment(seed=3, **kwargs)
        assert rep["baseline"]["digest"] == rep2["baseline"]["digest"]
        assert rep["chaotic"]["digest"] == rep2["chaotic"]["digest"]
        assert rep["storm_quarantines"] >= 1
        assert rep["storm_rejections"].get("quarantined", 0) > 0
        assert rep["chaotic"]["tenants"]["storm"]["breaker"] == "open"
        for s in rep["steady"].values():
            assert s["within_bound"]

    def test_different_seed_different_digest(self):
        kwargs = dict(
            steady_tenants=1, requests_per_tenant=20, storm_requests=10,
            mean_gap_cycles=2_000.0, executor=stub_executor,
        )
        a = containment_experiment(seed=0, **kwargs)
        b = containment_experiment(seed=1, **kwargs)
        assert a["baseline"]["digest"] != b["baseline"]["digest"]


class TestRealExecutor:
    def test_clean_run_is_deterministic(self):
        spec = {"workload": "saxpy", "time_scale": 8.0}
        first = execute_request(spec)
        second = execute_request(dict(spec))
        assert first == second
        assert first["cycles"] > 0
        assert first["faults_raised"] > 0  # demand paging faults
        assert first["injections"] == 0

    def test_chaos_spec_injects(self):
        spec = {
            "workload": "saxpy", "time_scale": 8.0,
            "chaos_intensity": 3.0, "seed": 1, "cycle_budget": 200_000.0,
        }
        result = execute_request(spec)
        assert result["injections"] > 0

    def test_hang_spec_raises_simulation_hang(self):
        with pytest.raises(SimulationHang):
            execute_request({"workload": "saxpy", "hang": True})

    def test_unknown_spec_key_rejected(self):
        with pytest.raises(ValueError, match="unknown spec key"):
            execute_request({"workload": "saxpy", "wl": "typo"})

    def test_cache_hit_matches_cold_run_through_service(self):
        service = GpuService(isolated=False)
        # real kernels fault by design (demand paging): budget above it
        service.register_tenant("t", _policy(fault_budget=10**6))
        spec = {"workload": "saxpy", "time_scale": 8.0}

        async def run():
            cold = await service.submit("t", spec)
            warm = await service.submit("t", dict(spec))
            return cold, warm

        cold, warm = asyncio.run(run())
        assert warm.cached
        assert warm.value == cold.value
        assert warm.value["state_digest"] == cold.value["state_digest"]


class TestServeCli:
    def test_serve_bench_registered(self):
        from repro.harness.__main__ import SUBCOMMANDS

        assert "serve-bench" in SUBCOMMANDS

    def test_update_conflicts_with_quick(self):
        from repro.harness.serve_bench import main

        with pytest.raises(SystemExit) as exc:
            main(["--update", "--quick"])
        assert exc.value.code == 2
