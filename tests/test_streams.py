"""Multi-kernel stream tests: scheduler policies, single-stream/legacy
bit-identity, determinism digests, fault-queue contention, cross-kernel
block switching, and the runtime stream API edge cases
(docs/CONCURRENCY.md)."""

from dataclasses import asdict

import pytest

from repro.functional.trace import BlockTrace
from repro.harness import overlap_digest, run_streams_scenario
from repro.runtime import GpuDevice, RuntimeError_
from repro.system import GPUConfig, MultiKernelScheduler
from repro.telemetry import Telemetry
from repro.telemetry import events as ev
from repro.workloads import MICRO, get_stream_scenario

TS = 8.0  # keep the µs-range fault constants small (DEFAULT_TIME_SCALE)


def _block(block_id, kernel_id):
    return BlockTrace(block_id=block_id, warps=[], kernel_id=kernel_id)


def _thrash_specs(device, count=2):
    """``count`` fresh tlb-thrash kernels with disjoint CPU-dirty inputs."""
    specs = []
    for tag in range(count):
        wl = MICRO.fresh("tlb-thrash")
        span = (wl.iters + 1) * wl.num_warps * wl.PAGE_STRIDE
        src = device.malloc_managed(span, name=f"in-{tag}")
        out = device.malloc_managed(wl.num_threads * 4, name=f"out-{tag}")
        device.fill(src, [float(i % 97) for i in range(span // 4)])
        specs.append((wl, src, out))
    return specs


class TestMultiKernelScheduler:
    def _sched(self, policy="partition", num_sms=4):
        # stream 0: kernels 0 then 1 (in-order); stream 1: kernel 2
        blocks = {
            0: [_block(i, 0) for i in range(2)],
            1: [_block(i, 1) for i in range(2)],
            2: [_block(i, 2) for i in range(3)],
        }
        return MultiKernelScheduler(
            [[0, 1], [2]], blocks, num_sms=num_sms, policy=policy
        )

    def test_partition_home_streams(self):
        sched = self._sched("partition", num_sms=4)
        assert [sched.home_stream(j) for j in range(4)] == [0, 0, 1, 1]

    def test_interleave_home_streams(self):
        sched = self._sched("interleave", num_sms=4)
        assert [sched.home_stream(j) for j in range(4)] == [0, 1, 0, 1]

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            self._sched(policy="priority")

    def test_same_stream_successor_hidden_until_complete(self):
        sched = self._sched()
        # kernel 1 rides behind kernel 0 on stream 0: invisible in pending
        assert sched.eligible_kernel(0) == 0
        assert sched.pending == 2 + 3  # kernels 0 and 2 only
        got = [sched.next_block(0).kernel_id for _ in range(2)]
        assert got == [0, 0]
        # kernel 0 drained but not complete: home SM now steals from
        # stream 1 rather than running kernel 1 early
        assert sched.next_block(0).kernel_id == 2
        sched.on_kernel_complete(0)
        assert sched.eligible_kernel(0) == 1
        assert sched.next_block(0).kernel_id == 1

    def test_stealing_counts_cross_stream_dispatches(self):
        sched = self._sched()
        # SM 3's home is stream 1 (kernel 2); drain it, then steal
        for _ in range(3):
            assert sched.next_block(3).kernel_id == 2
        assert sched.stolen == 0
        assert sched.next_block(3).kernel_id == 0
        assert sched.stolen == 1
        assert sched.pending_for(0) == 1

    def test_drained_returns_none(self):
        sched = self._sched()
        got = [sched.next_block(0).kernel_id for _ in range(5)]
        assert got == [0, 0, 2, 2, 2]  # home kernel, then stolen work
        # kernel 1 exists but rides behind incomplete kernel 0: invisible
        assert sched.next_block(0) is None
        sched.on_kernel_complete(0)
        assert [sched.next_block(0).kernel_id for _ in range(2)] == [1, 1]
        assert sched.next_block(0) is None
        assert sched.pending == 0
        assert sched.dispatched == sched.total_blocks == 7


class TestSingleStreamEquivalence:
    def test_one_stream_matches_legacy_launch_bit_for_bit(self):
        # the same kernel through the legacy synchronous path...
        dev_a = GpuDevice(scheme="replay-queue", time_scale=TS)
        (wl, src, out), = _thrash_specs(dev_a, count=1)
        legacy = dev_a.launch(wl.kernel, grid=wl.grid_dim,
                              block=wl.block_dim, args=(src, out))

        # ...and through a single stream + synchronize
        dev_b = GpuDevice(scheme="replay-queue", time_scale=TS)
        (wl2, src2, out2), = _thrash_specs(dev_b, count=1)
        handle = dev_b.create_stream().launch(
            wl2.kernel, grid=wl2.grid_dim, block=wl2.block_dim,
            args=(src2, out2),
        )
        merged = dev_b.synchronize()

        assert merged.cycles == legacy.cycles
        assert asdict(merged.fault_stats) == asdict(legacy.sim.fault_stats)
        assert [asdict(s) for s in merged.sm_stats] == [
            asdict(s) for s in legacy.sim.sm_stats
        ]
        assert handle.done and handle.cycles == merged.kernels[0].cycles
        assert dev_b.read(out2, 4) == dev_a.read(out, 4)


class TestDeterminism:
    @pytest.mark.parametrize("policy", ["partition", "interleave"])
    def test_overlapped_run_is_bit_reproducible(self, policy):
        digests = []
        for _ in range(2):
            dev = GpuDevice(scheme="replay-queue", time_scale=TS)
            for wl, src, out in _thrash_specs(dev):
                dev.create_stream().launch(
                    wl.kernel, grid=wl.grid_dim, block=wl.block_dim,
                    args=(src, out),
                )
            digests.append(overlap_digest(dev.synchronize(policy=policy)))
        assert digests[0] == digests[1]

    def test_streams_experiment_overlap_beats_serial(self):
        # the acceptance criterion: overlapped makespan strictly below the
        # serial sum for the contention scenario (replay asserts the
        # digest match internally)
        data = run_streams_scenario("contention", verify_reproducible=True)
        assert data["makespan"] < data["serial_sum"]
        assert all(r["faults_serial"] > 0 for r in data["rows"])

    def test_contention_queues_behind_neighbour(self):
        # overlapped, each kernel finishes no earlier than it does alone:
        # its faults now share the queue with the other stream's
        data = run_streams_scenario("contention", verify_reproducible=False)
        for row in data["rows"]:
            assert row["overlapped"] >= row["serial"]


class TestCrossKernelBlockSwitch:
    def test_switching_fetches_blocks_from_other_kernel(self):
        # 2 SMs x 2 resident blocks vs 32 total blocks: faulted blocks get
        # switched out and the freed slots pull pending work — including
        # blocks *stolen* from the other stream's kernel (use case 1
        # across kernel boundaries)
        dev = GpuDevice(
            config=GPUConfig(num_sms=2, max_tbs_per_sm=2),
            scheme="replay-queue", block_switching=True, time_scale=TS,
        )
        scenario = get_stream_scenario("contention")
        for spec in scenario.build(dev):
            dev.create_stream().launch(
                spec.kernel, grid=spec.grid, block=spec.block,
                args=spec.args,
            )
        tel = Telemetry()
        res = dev.synchronize(telemetry=tel)

        outs = sum(s.block_switch_outs for s in res.sm_stats)
        ins = sum(s.block_switch_ins for s in res.sm_stats)
        assert outs > 0 and ins > 0
        assert res.stolen_blocks > 0

        # partition policy on 2 SMs: SM 0 is stream 0's, SM 1 is stream 1's;
        # a block launch tagged with the other stream's kernel is the
        # cross-kernel fetch in the event log
        cross = [
            rec for rec in tel.tracer.events()
            if rec[0] == ev.EV_BLOCK_LAUNCH
            and rec[5]["kernel"] != int(rec[4].replace("sm", ""))
        ]
        assert len(cross) == res.stolen_blocks > 0

    def test_switch_events_carry_kernel_tags(self):
        dev = GpuDevice(
            config=GPUConfig(num_sms=2, max_tbs_per_sm=2),
            scheme="replay-queue", block_switching=True, time_scale=TS,
        )
        for wl, src, out in _thrash_specs(dev):
            dev.create_stream().launch(
                wl.kernel, grid=wl.grid_dim, block=wl.block_dim,
                args=(src, out),
            )
        tel = Telemetry()
        dev.synchronize(telemetry=tel)
        tagged = [
            rec for rec in tel.tracer.events()
            if rec[0] in (ev.EV_BLOCK_SWITCH_OUT, ev.EV_BLOCK_SWITCH_IN)
        ]
        assert tagged and all("kernel" in rec[5] for rec in tagged)


class TestRuntimeStreamApi:
    def test_stream_launch_rejects_telemetry(self):
        dev = GpuDevice(time_scale=TS)
        (wl, src, out), = _thrash_specs(dev, count=1)
        stream = dev.create_stream()
        with pytest.raises(RuntimeError_):
            dev.launch(wl.kernel, grid=wl.grid_dim, block=wl.block_dim,
                       args=(src, out), telemetry=Telemetry(), stream=stream)

    def test_foreign_stream_rejected(self):
        dev = GpuDevice(time_scale=TS)
        other = GpuDevice(time_scale=TS)
        (wl, src, out), = _thrash_specs(dev, count=1)
        with pytest.raises(RuntimeError_):
            dev.launch(wl.kernel, grid=wl.grid_dim, block=wl.block_dim,
                       args=(src, out), stream=other.create_stream())

    def test_handle_cycles_raises_before_synchronize(self):
        dev = GpuDevice(time_scale=TS)
        (wl, src, out), = _thrash_specs(dev, count=1)
        handle = dev.create_stream().launch(
            wl.kernel, grid=wl.grid_dim, block=wl.block_dim, args=(src, out)
        )
        assert not handle.done
        with pytest.raises(RuntimeError_):
            handle.cycles
        dev.synchronize()
        assert handle.done and handle.cycles > 0

    def test_legacy_launch_drains_queue_first(self):
        # program order: a synchronous launch implicitly synchronizes any
        # queued stream work so it observes the streams' paging state
        dev = GpuDevice(time_scale=TS)
        (wl, src, out), (wl2, src2, out2) = _thrash_specs(dev, count=2)
        handle = dev.create_stream().launch(
            wl.kernel, grid=wl.grid_dim, block=wl.block_dim, args=(src, out)
        )
        legacy = dev.launch(wl2.kernel, grid=wl2.grid_dim,
                            block=wl2.block_dim, args=(src2, out2))
        assert handle.done  # implicit synchronize ran
        assert len(dev.sync_results) == 1
        assert legacy.cycles > 0
        assert dev.total_cycles == pytest.approx(
            dev.sync_results[0].cycles + legacy.cycles
        )

    def test_empty_synchronize_returns_none(self):
        dev = GpuDevice(time_scale=TS)
        assert dev.synchronize() is None
        assert dev.create_stream().synchronize() is None

    def test_more_streams_than_sms_rejected(self):
        dev = GpuDevice(config=GPUConfig(num_sms=2), time_scale=TS)
        specs = _thrash_specs(dev, count=3)
        for wl, src, out in specs:
            dev.create_stream().launch(
                wl.kernel, grid=wl.grid_dim, block=wl.block_dim,
                args=(src, out),
            )
        with pytest.raises(ValueError):
            dev.synchronize()

    def test_stream_summary_and_readback(self):
        dev = GpuDevice(time_scale=TS)
        outs = []
        for wl, src, out in _thrash_specs(dev):
            dev.create_stream().launch(
                wl.kernel, grid=wl.grid_dim, block=wl.block_dim,
                args=(src, out),
            )
            outs.append(out)
        res = dev.synchronize()
        summary = res.stream_summary()
        assert set(summary) == {0, 1}
        assert all(s["launches"] == 1 for s in summary.values())
        assert sum(s["faults"] for s in summary.values()) \
            == res.fault_stats.faults_raised
        # functional results are exactly the synchronous-path values
        a, b = (dev.read(o, 4) for o in outs)
        assert a == b  # identical kernels on identical inputs


class TestMultiStreamWatchdog:
    """Watchdog + invariant sanitizer under multi-stream contention: a
    hang confined to one stream must surface as a kernel-tagged
    SimulationHang while the other stream's completed work stays intact
    (the fault-containment contract docs/ROBUSTNESS.md serves on)."""

    def _wedged_sim(self, budget=50_000.0):
        """A two-stream contention sim whose stream-1 home SMs are wedged
        (awake, never issuing) from cycle 0: stream 0 runs to completion,
        stream 1's resident blocks never retire."""
        from repro.chaos import Watchdog
        from repro.system import MultiKernelSimulator

        dev = GpuDevice(scheme="replay-queue", time_scale=TS)
        for wl, src, out in _thrash_specs(dev):
            dev.create_stream().launch(
                wl.kernel, grid=wl.grid_dim, block=wl.block_dim,
                args=(src, out),
            )
        sim = MultiKernelSimulator(
            dev._queued,
            address_space=dev.aspace,
            config=dev.config,
            scheme=dev.scheme,
            interconnect=dev.interconnect,
            paging="demand",
            frame_allocator=dev.frames,
            watchdog=Watchdog(budget),
            sanitize=True,
        )
        for sm in sim.sms:
            if sim.tb_scheduler.home_stream(sm.sm_id) == 1:
                sm.try_issue = lambda cycle: 0  # awake, never issues
        return sim

    def test_hang_in_one_stream_tags_the_offending_kernel(self):
        from repro.chaos import SimulationHang

        sim = self._wedged_sim()
        with pytest.raises(SimulationHang) as exc_info:
            sim.run()
        diag = exc_info.value.diagnostic

        # the diagnostic names the hung launch, not just the SM
        assert diag.stuck_kernels() == [1]
        live = [
            w
            for warps in diag.warp_states.values()
            for w in warps if not w["done"]
        ]
        assert live and all(w["kernel"] == 1 for w in live)
        assert "kernel=1" in str(exc_info.value)

        # the other stream's completed blocks are intact
        assert sim.kernel_remaining[0] == 0
        assert sim.kernel_remaining[1] > 0
        assert diag.committed > 0
        assert sim.kernel_last_done[0] > 0.0

    def test_healthy_contention_run_trips_nothing(self):
        from repro.chaos import Watchdog
        from repro.system import MultiKernelSimulator

        dev = GpuDevice(scheme="replay-queue", time_scale=TS)
        for wl, src, out in _thrash_specs(dev):
            dev.create_stream().launch(
                wl.kernel, grid=wl.grid_dim, block=wl.block_dim,
                args=(src, out),
            )
        sim = MultiKernelSimulator(
            dev._queued,
            address_space=dev.aspace,
            config=dev.config,
            scheme=dev.scheme,
            interconnect=dev.interconnect,
            paging="demand",
            frame_allocator=dev.frames,
            watchdog=Watchdog(),
            sanitize=True,
        )
        result = sim.run()  # sanitizer invariants checked throughout
        assert result.cycles > 0
        assert sim.watchdog.trips == 0
        assert all(n == 0 for n in sim.kernel_remaining.values())
