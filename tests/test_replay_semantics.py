"""Functional demonstrations of the paper's Section 2.5 problems.

These tests execute the paper's 4-instruction example with real register
values, then *squash and replay* the faulting loads the way each scheme
would, and check the architectural outcome:

- sparse replay: committed instructions (B, D) must not be re-executed;
- RAW on replay: replaying load C after D overwrote its address register R4
  reads the wrong address under baseline early release — the operand log
  preserves the original source and the replay-queue's conservative release
  prevents the overwrite in the first place.
"""

import numpy as np
import pytest

from repro.functional import Interpreter, Launch
from repro.functional.interpreter import WarpState
from repro.isa import Imm, Instruction, KernelBuilder, Opcode, R
from repro.vm import SparseMemory

ADDR_A = 0x1000
ADDR_C = 0x2000
ADDR_WRONG = 0x3000


def build_example():
    """The paper's example: A: ld, B: sub, C: ld [R4], D: add R4."""
    kb = KernelBuilder("fig3", regs_per_thread=16)
    kb.mov(R(2), Imm(ADDR_A))
    kb.mov(R(4), Imm(ADDR_C))
    kb.mov(R(7), Imm(ADDR_WRONG - 8))
    kb.mov(R(9), Imm(100))
    # the 4 instructions of Figure 3 start at pc 4:
    kb.ld_global(R(3), R(2))  # A
    kb.isub(R(9), R(9), Imm(4))  # B
    kb.ld_global(R(8), R(4))  # C
    kb.iadd(R(4), R(7), Imm(8))  # D   (WAR with C on R4)
    kb.exit()
    return kb.build()


def fresh_state():
    mem = SparseMemory()
    mem.store(ADDR_A, 111.0)
    mem.store(ADDR_C, 222.0)
    mem.store(ADDR_WRONG, 999.0)
    kernel = build_example()
    launch = Launch(kernel, grid_dim=1, block_dim=32)
    interp = Interpreter(memory=mem)
    warp = WarpState(0, 0, launch)
    shared = SparseMemory()
    return interp, warp, shared, kernel


def exec_pc(interp, warp, shared, kernel, pc):
    inst = kernel.instructions[pc]
    mask = np.ones(32, dtype=bool)
    interp.execute(inst, warp, mask, shared)


class TestSparseReplay:
    def test_committed_instructions_must_not_be_replayed(self):
        """Replaying only the faulted loads (replay-queue semantics) leaves
        B's and D's committed results intact and correct."""
        interp, warp, shared, kernel = fresh_state()
        for pc in range(0, 8):  # prologue + A..D commit out of order
            exec_pc(interp, warp, shared, kernel, pc)
        # A and C "faulted": squash their results, replay only them
        replayed = [4, 6]
        for pc in replayed:
            exec_pc(interp, warp, shared, kernel, pc)
        assert warp.regs[0, 9] == 96  # B executed exactly once
        assert warp.regs[0, 3] == 111.0  # A's value

    def test_naive_full_rewind_reexecutes_committed_work(self):
        """The strawman that makes sparse replay a *problem*: rewinding the
        pc to the oldest fault re-executes committed instruction B, visibly
        corrupting state (R9 decremented twice)."""
        interp, warp, shared, kernel = fresh_state()
        for pc in range(0, 8):
            exec_pc(interp, warp, shared, kernel, pc)
        for pc in range(4, 8):  # naive rewind to A replays B and D too
            exec_pc(interp, warp, shared, kernel, pc)
        assert warp.regs[0, 9] == 92  # 100 - 4 - 4: corrupted


class TestRawOnReplay:
    def test_early_release_corrupts_replayed_load(self):
        """Baseline early source release: D commits before C replays, so
        the replayed C reads D's new R4 value -> wrong data."""
        interp, warp, shared, kernel = fresh_state()
        for pc in range(0, 8):
            exec_pc(interp, warp, shared, kernel, pc)
        # C faulted; D already committed (out-of-order commit).  Replay C:
        exec_pc(interp, warp, shared, kernel, 6)
        assert warp.regs[0, 8] == 999.0  # read ADDR_WRONG: incorrect!

    def test_operand_log_preserves_source(self):
        """Approach 3: C's source operand was logged at operand read; the
        replay reads the log, not the register file."""
        interp, warp, shared, kernel = fresh_state()
        for pc in range(0, 6):
            exec_pc(interp, warp, shared, kernel, pc)
        operand_log = {6: warp.regs[:, 4].copy()}  # logged at operand read
        exec_pc(interp, warp, shared, kernel, 6)  # C executes (faults)
        exec_pc(interp, warp, shared, kernel, 7)  # D commits, R4 overwritten
        # replay C with the logged source
        saved = warp.regs[:, 4].copy()
        warp.regs[:, 4] = operand_log[6]
        exec_pc(interp, warp, shared, kernel, 6)
        warp.regs[:, 4] = saved
        assert warp.regs[0, 8] == 222.0  # correct value

    def test_replay_queue_release_order_prevents_overwrite(self):
        """Approach 2: D's issue is held until C's last TLB check; if C
        faults, D has not overwritten R4, so the replay is correct."""
        interp, warp, shared, kernel = fresh_state()
        for pc in range(0, 7):  # stop before D: WAR hold still active
            exec_pc(interp, warp, shared, kernel, pc)
        # C faulted; replay C before allowing D to issue:
        exec_pc(interp, warp, shared, kernel, 6)
        assert warp.regs[0, 8] == 222.0
        exec_pc(interp, warp, shared, kernel, 7)  # now D proceeds
        assert warp.regs[0, 4] == ADDR_WRONG
