"""Functional-simulator tests: semantics of every instruction family,
divergence, predication, barriers, atomics, device malloc, tracing."""

import numpy as np
import pytest

from repro.functional import (
    FunctionalError,
    Interpreter,
    Launch,
    TrapRaised,
)
from repro.isa import Imm, KernelBuilder, Opcode, P, R, Special, SReg
from repro.vm import AddressSpace, DeviceHeap, SegmentKind, SparseMemory

OUT = 0x100000


def run_kernel(build, grid=1, block=32, params=(), memory=None, heap=None):
    kb = KernelBuilder("t", regs_per_thread=32)
    build(kb)
    kb.exit()
    kernel = kb.build()
    mem = memory if memory is not None else SparseMemory()
    interp = Interpreter(memory=mem, heap=heap)
    trace = interp.run(Launch(kernel, grid, block, params=list(params)))
    return mem, trace


def out_values(mem, count, base=OUT):
    return mem.read_array(base, count)


def store_per_thread(kb, value_reg):
    kb.global_thread_id(R(30))
    kb.imad(R(31), R(30), Imm(4), Imm(OUT))
    kb.st_global(R(31), value_reg)


class TestAluSemantics:
    @pytest.mark.parametrize(
        "emit,expect",
        [
            (lambda kb: kb.iadd(R(1), Imm(3), Imm(4)), 7),
            (lambda kb: kb.isub(R(1), Imm(3), Imm(4)), -1),
            (lambda kb: kb.imul(R(1), Imm(3), Imm(4)), 12),
            (lambda kb: kb.imad(R(1), Imm(3), Imm(4), Imm(5)), 17),
            (lambda kb: kb.imin(R(1), Imm(3), Imm(4)), 3),
            (lambda kb: kb.imax(R(1), Imm(3), Imm(4)), 4),
            (lambda kb: kb.shl(R(1), Imm(3), Imm(2)), 12),
            (lambda kb: kb.shr(R(1), Imm(12), Imm(2)), 3),
            (lambda kb: kb.and_(R(1), Imm(12), Imm(10)), 8),
            (lambda kb: kb.or_(R(1), Imm(12), Imm(10)), 14),
            (lambda kb: kb.xor(R(1), Imm(12), Imm(10)), 6),
            (lambda kb: kb.fadd(R(1), Imm(1.5), Imm(2.25)), 3.75),
            (lambda kb: kb.fsub(R(1), Imm(1.5), Imm(2.25)), -0.75),
            (lambda kb: kb.fmul(R(1), Imm(1.5), Imm(2.0)), 3.0),
            (lambda kb: kb.ffma(R(1), Imm(1.5), Imm(2.0), Imm(1.0)), 4.0),
            (lambda kb: kb.fmin(R(1), Imm(1.5), Imm(2.0)), 1.5),
            (lambda kb: kb.fmax(R(1), Imm(1.5), Imm(2.0)), 2.0),
        ],
    )
    def test_binop(self, emit, expect):
        def build(kb):
            emit(kb)
            store_per_thread(kb, R(1))

        mem, _ = run_kernel(build)
        assert out_values(mem, 32) == [pytest.approx(expect)] * 32

    def test_sfu_ops(self):
        def build(kb):
            kb.mov(R(0), Imm(4.0))
            kb.fsqrt(R(1), R(0))
            kb.frsqrt(R(2), R(0))
            kb.fdiv(R(3), Imm(1.0), R(0))
            kb.fexp(R(4), Imm(0.0))
            kb.flog(R(5), Imm(np.e))
            kb.fadd(R(6), R(1), R(2))
            kb.fadd(R(6), R(6), R(3))
            kb.fadd(R(6), R(6), R(4))
            kb.fadd(R(6), R(6), R(5))
            store_per_thread(kb, R(6))

        mem, _ = run_kernel(build)
        # sqrt(4)+rsqrt(4)+1/4+exp(0)+log(e) = 2+0.5+0.25+1+1
        assert out_values(mem, 32) == [pytest.approx(4.75)] * 32

    def test_sin_cos(self):
        def build(kb):
            kb.fsin(R(1), Imm(0.0))
            kb.fcos(R(2), Imm(0.0))
            kb.fadd(R(3), R(1), R(2))
            store_per_thread(kb, R(3))

        mem, _ = run_kernel(build)
        assert out_values(mem, 32) == [pytest.approx(1.0)] * 32

    def test_division_by_zero_yields_zero(self):
        """FDIV by zero must not crash; the approximate SFU returns 0."""

        def build(kb):
            kb.fdiv(R(1), Imm(5.0), Imm(0.0))
            store_per_thread(kb, R(1))

        mem, _ = run_kernel(build)
        assert out_values(mem, 32) == [0.0] * 32

    def test_i2f_f2i(self):
        def build(kb):
            kb.f2i(R(1), Imm(3.7))
            kb.i2f(R(2), R(1))
            store_per_thread(kb, R(2))

        mem, _ = run_kernel(build)
        assert out_values(mem, 32) == [3.0] * 32

    def test_sel(self):
        def build(kb):
            kb.mov(R(0), SReg(Special.LANE))
            kb.isetp(P(0), "lt", R(0), Imm(16))
            kb.sel(R(1), P(0), Imm(7.0), Imm(9.0))
            store_per_thread(kb, R(1))

        mem, _ = run_kernel(build)
        assert out_values(mem, 32) == [7.0] * 16 + [9.0] * 16


class TestSpecialRegisters:
    def test_tid_ctaid_lane(self):
        def build(kb):
            kb.mov(R(0), SReg(Special.TID))
            kb.mov(R(1), SReg(Special.CTAID))
            kb.imad(R(2), R(1), SReg(Special.NTID), R(0))  # == gid
            store_per_thread(kb, R(2))

        mem, _ = run_kernel(build, grid=2, block=64)
        assert out_values(mem, 128) == [float(i) for i in range(128)]

    def test_nctaid_and_warpid(self):
        def build(kb):
            kb.mov(R(0), SReg(Special.NCTAID))
            kb.imad(R(1), R(0), Imm(100), SReg(Special.WARPID))
            store_per_thread(kb, R(1))

        mem, _ = run_kernel(build, grid=3, block=64)
        vals = out_values(mem, 64)
        assert vals[:32] == [300.0] * 32  # warp 0
        assert vals[32:] == [301.0] * 32  # warp 1


class TestComparisons:
    @pytest.mark.parametrize(
        "cmp,expected",
        [
            ("lt", [1.0] * 5 + [0.0] * 27),
            ("le", [1.0] * 6 + [0.0] * 26),
            ("gt", [0.0] * 6 + [1.0] * 26),
            ("ge", [0.0] * 5 + [1.0] * 27),
            ("eq", [0.0] * 5 + [1.0] + [0.0] * 26),
            ("ne", [1.0] * 5 + [0.0] + [1.0] * 26),
        ],
    )
    def test_isetp(self, cmp, expected):
        def build(kb):
            kb.mov(R(0), SReg(Special.LANE))
            kb.isetp(P(0), cmp, R(0), Imm(5))
            kb.sel(R(1), P(0), Imm(1.0), Imm(0.0))
            store_per_thread(kb, R(1))

        mem, _ = run_kernel(build)
        assert out_values(mem, 32) == expected

    def test_bad_comparison_rejected(self):
        def build(kb):
            inst = kb.isetp(P(0), "lt", R(0), Imm(1))
            inst.cmp = "bogus"
            store_per_thread(kb, R(0))

        with pytest.raises(FunctionalError, match="comparison"):
            run_kernel(build)


class TestPredication:
    def test_guarded_instruction_masks_lanes(self):
        def build(kb):
            kb.mov(R(0), SReg(Special.LANE))
            kb.isetp(P(0), "lt", R(0), Imm(8))
            kb.mov(R(1), Imm(5.0))
            kb.mov(R(1), Imm(9.0), guard=P(0))
            store_per_thread(kb, R(1))

        mem, _ = run_kernel(build)
        assert out_values(mem, 32) == [9.0] * 8 + [5.0] * 24

    def test_negated_guard(self):
        def build(kb):
            kb.mov(R(0), SReg(Special.LANE))
            kb.isetp(P(0), "lt", R(0), Imm(8))
            kb.mov(R(1), Imm(5.0))
            kb.mov(R(1), Imm(9.0), guard=P(0), guard_negate=True)
            store_per_thread(kb, R(1))

        mem, _ = run_kernel(build)
        assert out_values(mem, 32) == [5.0] * 8 + [9.0] * 24


class TestMemory:
    def test_load_store_roundtrip(self):
        mem = SparseMemory()
        mem.fill(0x2000, [float(i * i) for i in range(32)])

        def build(kb):
            kb.mov(R(0), SReg(Special.LANE))
            kb.imad(R(1), R(0), Imm(4), Imm(0x2000))
            kb.ld_global(R(2), R(1))
            kb.fadd(R(2), R(2), Imm(1.0))
            store_per_thread(kb, R(2))

        mem, _ = run_kernel(build, memory=mem)
        assert out_values(mem, 32) == [float(i * i + 1) for i in range(32)]

    def test_shared_memory_private_per_block(self):
        def build(kb):
            kb.mov(R(0), SReg(Special.TID))
            kb.shl(R(1), R(0), Imm(2))
            kb.mov(R(2), SReg(Special.CTAID))
            kb.st_shared(R(1), R(2))
            kb.bar()
            # read neighbour's slot (tid ^ 1)
            kb.xor(R(3), R(0), Imm(1))
            kb.shl(R(4), R(3), Imm(2))
            kb.ld_shared(R(5), R(4))
            store_per_thread(kb, R(5))

        mem, _ = run_kernel(build, grid=2, block=32)
        assert out_values(mem, 64) == [0.0] * 32 + [1.0] * 32

    def test_store_width8(self):
        def build(kb):
            kb.mov(R(0), SReg(Special.LANE))
            kb.imad(R(1), R(0), Imm(8), Imm(OUT))
            kb.st_global(R(1), R(0), width=8)

        mem, _ = run_kernel(build)
        assert mem.load(OUT + 8 * 5) == 5

    def test_atomics_accumulate_across_lanes(self):
        def build(kb):
            kb.mov(R(1), Imm(OUT))
            kb.atom_global(R(2), R(1), Imm(1.0), atom="add")

        mem, _ = run_kernel(build, grid=2, block=64)
        assert mem.load(OUT) == 128.0

    def test_atomic_returns_old_value(self):
        def build(kb):
            kb.mov(R(1), Imm(0x3000))
            kb.atom_global(R(2), R(1), Imm(1.0), atom="add")
            store_per_thread(kb, R(2))

        mem, _ = run_kernel(build, block=32)
        # lanes execute the atomic in order: old values are 0..31
        assert sorted(out_values(mem, 32)) == [float(i) for i in range(32)]

    def test_atomic_max(self):
        def build(kb):
            kb.mov(R(0), SReg(Special.LANE))
            kb.mov(R(1), Imm(0x3000))
            kb.atom_global(R(2), R(1), R(0), atom="max")

        mem, _ = run_kernel(build)
        assert mem.load(0x3000) == 31


class TestBarriers:
    def test_barrier_orders_shared_memory(self):
        """Warp 1 must observe warp 0's writes made before the barrier."""

        def build(kb):
            kb.mov(R(0), SReg(Special.TID))
            kb.shl(R(1), R(0), Imm(2))
            kb.st_shared(R(1), R(0))
            kb.bar()
            # read the slot of the thread 32 positions away (other warp)
            kb.xor(R(2), R(0), Imm(32))
            kb.shl(R(3), R(2), Imm(2))
            kb.ld_shared(R(4), R(3))
            store_per_thread(kb, R(4))

        mem, _ = run_kernel(build, block=64)
        expect = [float(i ^ 32) for i in range(64)]
        assert out_values(mem, 64) == expect


class TestMallocFree:
    def test_malloc_returns_heap_addresses(self):
        heap = DeviceHeap(base=1 << 40, size=1 << 20, num_arenas=2)

        def build(kb):
            kb.malloc(R(1), Imm(64))
            kb.st_global(R(1), Imm(7.0))
            kb.ld_global(R(2), R(1))
            store_per_thread(kb, R(2))

        mem, _ = run_kernel(build, block=32, heap=heap)
        assert out_values(mem, 32) == [7.0] * 32
        assert heap.bytes_live() == 32 * 64

    def test_free_recycles(self):
        heap = DeviceHeap(base=1 << 40, size=1 << 20, num_arenas=1)

        def build(kb):
            kb.malloc(R(1), Imm(64))
            kb.free(R(1))
            kb.malloc(R(2), Imm(64))
            kb.free(R(2))

        run_kernel(build, block=32, heap=heap)
        assert heap.bytes_live() == 0

    def test_malloc_without_heap_fails(self):
        def build(kb):
            kb.malloc(R(1), Imm(64))

        with pytest.raises(FunctionalError, match="heap"):
            run_kernel(build)


class TestTrap:
    def test_trap_raises(self):
        def build(kb):
            kb.trap()

        with pytest.raises(TrapRaised):
            run_kernel(build)

    def test_guarded_trap_with_no_active_lanes_is_noop(self):
        def build(kb):
            kb.isetp(P(0), "lt", SReg(Special.LANE), Imm(0))
            kb.trap(guard=P(0))
            store_per_thread(kb, R(0))

        run_kernel(build)  # must not raise


class TestLaunchValidation:
    def test_block_dim_must_be_warp_multiple(self):
        kb = KernelBuilder("k")
        kb.exit()
        with pytest.raises(ValueError):
            Launch(kb.build(), grid_dim=1, block_dim=33)

    def test_grid_dim_positive(self):
        kb = KernelBuilder("k")
        kb.exit()
        with pytest.raises(ValueError):
            Launch(kb.build(), grid_dim=0, block_dim=32)

    def test_missing_param_reported(self):
        def build(kb):
            kb.mov(R(0), kb.param(3))
            store_per_thread(kb, R(0))

        with pytest.raises(FunctionalError, match="param"):
            run_kernel(build, params=[1.0])


class TestTrace:
    def test_trace_records_memory_addresses(self):
        def build(kb):
            kb.mov(R(0), SReg(Special.LANE))
            kb.imad(R(1), R(0), Imm(4), Imm(0x4000))
            kb.ld_global(R(2), R(1))
            store_per_thread(kb, R(2))

        _, trace = run_kernel(build)
        loads = [
            t
            for w in trace.blocks[0].warps
            for t in w.instructions
            if t.op is Opcode.LD_GLOBAL
        ]
        assert len(loads) == 1
        assert loads[0].addresses == tuple(0x4000 + 4 * i for i in range(32))
        assert loads[0].active == 32

    def test_trace_counts(self):
        def build(kb):
            kb.iadd(R(1), Imm(1), Imm(2))
            store_per_thread(kb, R(1))

        _, trace = run_kernel(build, grid=2, block=64)
        assert len(trace.blocks) == 2
        assert trace.dynamic_instructions() > 0
        assert trace.global_memory_instructions() == 4  # 1 store/warp

    def test_touched_pages(self):
        def build(kb):
            kb.mov(R(1), Imm(0x8000))
            kb.st_global(R(1), Imm(1.0))

        _, trace = run_kernel(build)
        assert trace.touched_pages() == {0x8000 >> 12}

    def test_instruction_budget(self):
        kb = KernelBuilder("spin")
        kb.mov(R(0), Imm(0))
        top = kb.label("top")
        kb.bind(top)
        kb.iadd(R(0), R(0), Imm(1))
        kb.bra(top)
        kb.exit()
        kernel = kb.build()
        interp = Interpreter(max_dynamic_instructions=1000)
        with pytest.raises(FunctionalError, match="budget"):
            interp.run(Launch(kernel, 1, 32))
