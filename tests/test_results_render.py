"""Rendering tests for result tables and bar charts."""

import pytest

from repro.harness import ExperimentTable


@pytest.fixture
def table():
    t = ExperimentTable("figX", "demo ratios", columns=["a", "b"])
    t.add_row("alpha", [0.5, 1.0])
    t.add_row("beta", [1.5, 0.9])
    t.notes.append("a note")
    return t


class TestRender:
    def test_render_contains_rows_and_notes(self, table):
        text = table.render()
        assert "alpha" in text and "beta" in text
        assert "GEOMEAN" in text
        assert "note: a note" in text

    def test_custom_format(self, table):
        text = table.render(fmt="{:.1f}")
        assert "0.5" in text and "0.50" not in text

    def test_bars_scale_to_max(self, table):
        bars = table.render_bars("a", width=20)
        lines = bars.splitlines()
        alpha = next(l for l in lines if l.startswith("alpha"))
        beta = next(l for l in lines if l.startswith("beta"))
        assert beta.count("#") > alpha.count("#")
        assert beta.count("#") == 20  # the max fills the width

    def test_bars_reference_marker(self, table):
        bars = table.render_bars("a", width=20, reference=1.0)
        alpha = next(l for l in bars.splitlines() if l.startswith("alpha"))
        assert "|" in alpha  # the 1.0 marker beyond the 0.5 bar

    def test_bars_unknown_column(self, table):
        with pytest.raises(ValueError):
            table.render_bars("zzz")
