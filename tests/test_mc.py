"""Model-checking tests (:mod:`repro.mc`, docs/MODELCHECK.md): schedule
control record/replay, independence rules, explorer behavior on a
synthetic decision tree, default bit-identity of the threaded choice
sites, scenario exploration determinism, the negative-control
counterexample, and the ``mc`` CLI."""

import json

import pytest

from repro.mc import (
    CLEAN,
    Execution,
    Explorer,
    ScheduleControl,
    SchedulePoint,
    TraceDivergence,
    execute_trace,
    get_mc_scenario,
    independent,
    replay_trace,
    run_mc_scenario,
)

# ---------------------------------------------------------------------------
# schedule control
# ---------------------------------------------------------------------------


class TestScheduleControl:
    def test_defaults_to_zero_and_logs(self):
        ctl = ScheduleControl()
        assert ctl.choose("sched.steal", ("sm", 0), 3) == 0
        assert ctl.choose("fault.service_order", ("group", 7), 2, 42.0) == 0
        assert ctl.trace() == (0, 0)
        assert len(ctl) == 2
        pt = ctl.log[1]
        assert pt.site == "fault.service_order"
        assert pt.key == ("group", 7)
        assert pt.choices == 2
        assert pt.time == 42.0
        assert "fault.service_order" in pt.describe()

    def test_single_choice_not_logged(self):
        ctl = ScheduleControl()
        assert ctl.choose("sched.steal", ("sm", 0), 1) == 0
        assert ctl.trace() == ()

    def test_forced_prefix_then_defaults(self):
        ctl = ScheduleControl((1, 2))
        assert ctl.choose("a", ("sm", 0), 2) == 1
        assert ctl.choose("b", ("sm", 1), 3) == 2
        assert ctl.choose("c", ("sm", 2), 2) == 0
        assert ctl.trace() == (1, 2, 0)

    def test_out_of_range_forced_choice_diverges(self):
        ctl = ScheduleControl((5,))
        with pytest.raises(TraceDivergence):
            ctl.choose("a", ("sm", 0), 2)

    def test_replay_is_exact(self):
        first = ScheduleControl()
        for i in range(4):
            first.choose("s", ("sm", i), 3)
        replay = ScheduleControl(first.trace())
        for i in range(4):
            replay.choose("s", ("sm", i), 3)
        assert replay.trace() == first.trace()


class TestIndependence:
    def _pt(self, site, key, chosen=0):
        return SchedulePoint(site=site, key=key, choices=2, chosen=chosen)

    def test_global_is_dependent_on_everything(self):
        g = self._pt("chaos.resolve_delay", ("global",))
        s = self._pt("sched.steal", ("sm", 0))
        assert not independent(g, s)
        assert not independent(s, g)
        assert not independent(g, g)

    def test_same_key_dependent(self):
        a = self._pt("sched.steal", ("sm", 3))
        b = self._pt("sched.steal", ("sm", 3), chosen=1)
        assert not independent(a, b)

    def test_distinct_sms_and_groups_independent(self):
        assert independent(
            self._pt("sched.steal", ("sm", 0)),
            self._pt("sched.steal", ("sm", 1)),
        )
        assert independent(
            self._pt("fault.service_order", ("group", 1)),
            self._pt("fault.service_order", ("group", 2)),
        )

    def test_cross_kind_dependent(self):
        assert not independent(
            self._pt("sched.steal", ("sm", 0)),
            self._pt("fault.service_order", ("group", 0)),
        )


# ---------------------------------------------------------------------------
# explorer on a synthetic decision tree (no simulator)
# ---------------------------------------------------------------------------


def _tree_run(prefix):
    """Three decision points (2 x 3 x 2 = 12 traces); the run fails iff
    the middle choice is 2 AND the chaos choice is 1."""
    ctl = ScheduleControl(prefix)
    ctl.choose("sched.steal", ("sm", 0), 2)
    b = ctl.choose("sched.steal", ("sm", 1), 3)
    c = ctl.choose("chaos.x", ("global",), 2)
    bad = b == 2 and c == 1
    return Execution(
        trace=ctl.trace(),
        points=list(ctl.log),
        verdict="violation" if bad else CLEAN,
        error="synthetic boom" if bad else None,
        functional_digest=None if bad else "f",
        arch_digest=None if bad else "a",
    )


def _symmetric_run(prefix):
    """Two decision points on distinct SMs and nothing else: both prune
    by independence, so only the default execution runs."""
    ctl = ScheduleControl(prefix)
    ctl.choose("sched.steal", ("sm", 0), 2)
    ctl.choose("sched.steal", ("sm", 1), 2)
    return Execution(
        trace=ctl.trace(), points=list(ctl.log), verdict=CLEAN,
        functional_digest="f", arch_digest="a",
    )


class TestExplorerSynthetic:
    def test_full_tree_explored_with_dedup(self):
        report = Explorer(_tree_run, max_executions=30).explore("tree")
        assert report.explored == 12
        assert report.distinct_traces == 12
        assert not report.truncated
        assert report.pruned["seen_prefix"] == 0
        tally = report._verdict_tally()
        assert tally == {"clean": 10, "violation": 2}

    def test_counterexamples_minimized_and_deduped(self):
        report = Explorer(_tree_run, max_executions=40).explore("tree")
        # (0,2,1) and (1,2,1) both fail and both minimize to (0,2,1)
        assert len(report.counterexamples) == 1
        cx = report.counterexamples[0]
        assert cx.minimized == (0, 2, 1)
        assert cx.verdict == "violation"
        assert report.pruned["duplicate_cex"] == 1
        assert _tree_run(cx.minimized).verdict == "violation"
        assert cx.decisions  # human-readable decision log present

    def test_independence_prunes_symmetric_points(self):
        report = Explorer(_symmetric_run, max_executions=10).explore("sym")
        assert report.explored == 1
        assert report.pruned["independence"] == 2

    def test_chaos_sites_never_pruned(self):
        # _tree_run's chaos point is last (vacuously independent of the
        # empty suffix) yet its alternative must still be explored —
        # that's exactly where the counterexample lives
        report = Explorer(_tree_run, max_executions=40).explore("tree")
        assert any(e.trace == (0, 0, 1) for e in report.executions)

    def test_execution_budget_truncates_and_counts(self):
        report = Explorer(_tree_run, max_executions=5).explore("tree")
        assert report.explored == 5
        assert report.truncated

    def test_branch_budget_caps_alternatives(self):
        report = Explorer(
            _tree_run, max_executions=30, max_branch=2
        ).explore("tree")
        # the 3-way point only ever tries alternative 1 => b==2 unreachable
        assert report.all_clean
        assert report.pruned["branch_budget"] > 0

    def test_depth_budget_caps_expansion(self):
        report = Explorer(
            _tree_run, max_executions=30, max_depth=2
        ).explore("tree")
        assert all(e.trace[2] == 0 for e in report.executions)
        assert report.pruned["depth_budget"] > 0

    def test_report_byte_identical(self):
        a = Explorer(_tree_run, max_executions=30).explore("tree")
        b = Explorer(_tree_run, max_executions=30).explore("tree")
        assert a.to_json() == b.to_json()

    def test_budget_validation(self):
        with pytest.raises(ValueError):
            Explorer(_tree_run, max_executions=0)
        with pytest.raises(ValueError):
            Explorer(_tree_run, max_branch=1)
        with pytest.raises(ValueError):
            Explorer(_tree_run, max_depth=0)

    def test_counters_populated(self):
        from repro.telemetry import CounterRegistry

        reg = CounterRegistry()
        Explorer(_tree_run, max_executions=30, counters=reg).explore("t")
        snap = reg.snapshot()
        assert snap["mc.executions"] == 12
        assert snap["mc.violations"] == 2
        assert snap["mc.distinct_traces"] == 12
        assert snap["mc.minimize_replays"] > 0


# ---------------------------------------------------------------------------
# default bit-identity: attaching a control with an empty trace must not
# change the simulation (every site's choice 0 is the legacy policy)
# ---------------------------------------------------------------------------


class TestDefaultBitIdentity:
    def test_contention_overlap_digest_unchanged(self):
        from repro.harness.streams import overlap_digest
        from repro.runtime import GpuDevice
        from repro.workloads import get_stream_scenario

        def run(schedule):
            dev = GpuDevice(scheme="replay-queue", time_scale=8.0)
            for spec in get_stream_scenario("contention").build(dev):
                stream = dev.create_stream()
                dev.launch(spec.kernel, grid=spec.grid, block=spec.block,
                           args=spec.args, stream=stream)
            return overlap_digest(dev.synchronize(policy="partition",
                                                  schedule=schedule))

        control = ScheduleControl()
        assert run(None) == run(control)
        assert len(control.log) > 0  # the sites actually recorded


# ---------------------------------------------------------------------------
# scenarios end to end
# ---------------------------------------------------------------------------


class TestMcScenarios:
    def test_unknown_scenario_raises(self):
        with pytest.raises(KeyError):
            get_mc_scenario("nope")

    def test_storm_exploration_byte_identical(self):
        kw = dict(max_executions=6, max_depth=30, max_branch=2)
        a = run_mc_scenario("fault-storm", **kw)
        b = run_mc_scenario("fault-storm", **kw)
        assert a.to_json() == b.to_json()
        assert a.all_clean
        assert a.digest_consistent()

    def test_negative_control_counterexample(self):
        report = run_mc_scenario(
            "fault-storm-bug", max_executions=12, max_depth=40,
            max_branch=2,
        )
        assert report.counterexamples, "negative control found nothing"
        cx = report.counterexamples[0]
        assert cx.verdict == "violation"
        assert "regression" in cx.error
        # minimized to a single injected choice
        assert sum(1 for c in cx.minimized if c) == 1
        # and the minimized trace replays to the same verdict
        replay = replay_trace("fault-storm-bug", cx.minimized)
        assert replay.verdict == cx.verdict
        assert replay.error == cx.error

    def test_execute_trace_verdict_and_digests(self):
        ex = execute_trace(get_mc_scenario("fault-storm"))
        assert ex.clean
        assert ex.functional_digest and ex.arch_digest
        assert ex.observables["faults_raised"] > 0
        sites = {p.site for p in ex.points}
        assert "chaos.resolve_delay" in sites
        assert "chaos.fault_storm" in sites
        assert "chaos.pkt_reorder" in sites
        assert "fault.service_order" in sites


class TestContentionAcceptance:
    """The headline acceptance criterion: >= 50 distinct interleavings of
    the two-stream contention scenario, every one sanitizer-clean with
    identical functional digests."""

    def test_fifty_distinct_interleavings_all_clean(self):
        report = run_mc_scenario("contention", max_executions=50)
        assert report.distinct_traces >= 50
        assert report.all_clean
        assert report.digest_consistent()
        assert not report.counterexamples
        clean_fds = {e.functional_digest for e in report.executions}
        assert len(clean_fds) == 1
        sites = {p.site for e in report.executions for p in e.points}
        assert "sched.steal" in sites
        assert "fault.service_order" in sites


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestMcCli:
    def test_explore_and_json_report(self, tmp_path, capsys):
        from repro.harness.__main__ import main

        out = str(tmp_path / "mc.json")
        code = main(["mc", "fault-storm", "--max-executions", "4",
                     "--max-branch", "2", "--json", out])
        assert code == 0
        captured = capsys.readouterr()
        assert "mc:fault-storm" in captured.out
        assert "mc.executions" in captured.out
        with open(out) as fh:
            payload = json.load(fh)
        assert payload["ok"] is True
        assert payload["scenarios"]["fault-storm"]["explored"] == 4
        assert payload["counters"]["mc.executions"] == 4

    def test_negative_control_exits_zero_when_found(self, capsys):
        from repro.harness.__main__ import main

        code = main(["mc", "fault-storm-bug", "--max-executions", "10",
                     "--max-branch", "2"])
        assert code == 0
        assert "counterexample" in capsys.readouterr().out

    def test_replay_mode(self, capsys):
        from repro.harness.__main__ import main

        assert main(["mc", "fault-storm", "--replay", "0,0"]) == 0
        assert "verdict=clean" in capsys.readouterr().out

    def test_unknown_scenario_usage_error(self):
        from repro.harness.__main__ import main

        with pytest.raises(SystemExit) as exc_info:
            main(["mc", "bogus"])
        assert exc_info.value.code == 2
