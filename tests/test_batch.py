"""Tests for the vectorized batch campaign backend (:mod:`repro.batch`).

The contract under test (docs/VECTORIZATION.md): the vectorized engine
is a bit-identical fast path over the scalar reference — same rows, same
notes, same digest — for every eligible spec; ineligible specs are
refused up front; a diverging batch is caught by the sampled validation
pass, never silently returned.
"""

import pytest

from repro.batch import (
    BatchEligibilityError,
    BatchValidationError,
    SweepSpec,
    VECTORIZABLE_SCHEMES,
    build_profile,
    classify,
    classify_cell,
    rows_digest,
    run_sweep,
    run_sweep_cell,
    sample_indices,
)
from repro.batch import engine as batch_engine

#: a small cross-backend matrix: one fault-free mode, one fault-heavy
#: workload, plus the partial-fault paging mode
MATRIX = [
    ("saxpy", "premapped"),
    ("saxpy", "demand"),
    ("stream-sum", "demand"),
    ("tlb-thrash", "demand"),
    ("tlb-thrash", "demand-output"),
]

SWEEP_AXES = dict(seeds=(0, 1), latency_scales=(100, 300))


def _not_a_sweep_cell(workload="saxpy"):
    return None


class TestEquivalence:
    @pytest.mark.parametrize("workload,paging", MATRIX)
    def test_backends_bit_identical(self, workload, paging):
        """Scalar and vectorized sweeps agree byte for byte — rows,
        labels, notes (digest included)."""
        scalar = run_sweep(workload, paging=paging, backend="scalar",
                           **SWEEP_AXES)
        vector = run_sweep(workload, paging=paging, backend="vectorized",
                           **SWEEP_AXES)
        assert scalar.to_dict() == vector.to_dict()

    def test_premapped_takes_no_faults(self):
        table = run_sweep("saxpy", paging="premapped", backend="vectorized")
        for row in table.rows.values():
            assert row[1] == 0  # fault-stall
            assert row[2] == 0  # faults

    def test_latency_scale_is_monotone(self):
        """Scaling the fault latency up can only add fault stall."""
        lo = run_sweep("tlb-thrash", latency_scales=(100,))
        hi = run_sweep("tlb-thrash", latency_scales=(400,))
        for label_lo, label_hi in zip(lo.rows, hi.rows):
            assert hi.rows[label_hi][1] > lo.rows[label_lo][1]
            assert hi.rows[label_hi][0] >= lo.rows[label_lo][0]

    def test_seed_changes_jitter(self):
        """Different seeds perturb the fault stall (jitter is seeded)."""
        table = run_sweep("tlb-thrash", schemes=("replay-queue",),
                          seeds=(0, 7), backend="vectorized")
        stalls = [row[1] for row in table.rows.values()]
        assert stalls[0] != stalls[1]

    def test_validation_catches_corruption(self, monkeypatch):
        """A diverging vectorized batch must raise, not return."""
        real = batch_engine._vectorized_rows

        def corrupt(profile, configs):
            # off-by-one on every row: whichever subset the validator
            # samples, it must see the divergence
            return [[row[0] + 1, row[1], row[2]]
                    for row in real(profile, configs)]

        monkeypatch.setattr(batch_engine, "_vectorized_rows", corrupt)
        with pytest.raises(BatchValidationError):
            run_sweep("tlb-thrash", backend="vectorized")

    def test_validation_can_be_bypassed_explicitly(self, monkeypatch):
        """``validate=False`` exists for the benchmark's cost accounting
        only — it skips the sampled pass."""
        calls = []
        monkeypatch.setattr(
            batch_engine, "_validate_sampled",
            lambda *a, **k: calls.append(1),
        )
        run_sweep("saxpy", backend="vectorized", validate=False)
        assert not calls


class TestEligibility:
    def test_chaos_is_scalar_only(self):
        with pytest.raises(BatchEligibilityError):
            run_sweep("saxpy", chaos=True, backend="vectorized")

    def test_operand_log_is_scalar_only(self):
        with pytest.raises(BatchEligibilityError):
            run_sweep("saxpy", schemes=("operand-log",),
                      backend="vectorized")

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            run_sweep("saxpy", backend="gpu")

    def test_scalar_runs_the_ineligible_specs(self):
        """The scalar engine still covers what the fast path refuses."""
        log = run_sweep("tlb-thrash", schemes=("operand-log",),
                        backend="scalar")
        assert len(log.rows) == 1
        chaos = run_sweep("tlb-thrash", schemes=("replay-queue",),
                          chaos=True, backend="scalar")
        plain = run_sweep("tlb-thrash", schemes=("replay-queue",),
                          chaos=False, backend="scalar")
        # chaos latency factors only ever inflate fault costs
        assert (list(chaos.rows.values())[0][1]
                > list(plain.rows.values())[0][1])

    def test_classify_spec(self):
        ok, reason = classify(SweepSpec(workload="saxpy"))
        assert ok and reason == ""
        ok, reason = classify(SweepSpec(workload="saxpy", chaos=True))
        assert not ok and "chaos" in reason
        ok, reason = classify(
            SweepSpec(workload="saxpy", schemes=("operand-log",))
        )
        assert not ok and "operand-log" in reason

    def test_classify_cell(self):
        ok, _ = classify_cell(
            run_sweep_cell,
            {"workload": "saxpy", "schemes": list(VECTORIZABLE_SCHEMES)},
        )
        assert ok
        ok, reason = classify_cell(run_sweep_cell, {"chaos": True})
        assert not ok and "chaos" in reason
        ok, reason = classify_cell(
            run_sweep_cell, {"schemes": ["operand-log"]}
        )
        assert not ok and "operand-log" in reason
        ok, reason = classify_cell(_not_a_sweep_cell, {})
        assert not ok and "not a batch sweep cell" in reason

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            SweepSpec(workload="saxpy", paging="lazy")
        with pytest.raises(ValueError):
            SweepSpec(workload="saxpy", schemes=())
        with pytest.raises(ValueError):
            SweepSpec(workload="saxpy", latency_scales=(0,))


class TestDeterminism:
    def test_rows_digest_is_stable(self):
        rows = [[1, 2, 3], [4, 5, 6]]
        d1 = rows_digest(["a", "b"], rows)
        d2 = rows_digest(["a", "b"], [list(r) for r in rows])
        assert d1 == d2
        assert d1 != rows_digest(["a", "b"], [[1, 2, 3], [4, 5, 7]])

    def test_table_note_carries_digest(self):
        table = run_sweep("saxpy")
        assert table.notes and table.notes[0].startswith("rows digest ")

    def test_repeat_runs_identical(self):
        a = run_sweep("stream-sum", backend="vectorized", **SWEEP_AXES)
        b = run_sweep("stream-sum", backend="vectorized", **SWEEP_AXES)
        assert a.to_dict() == b.to_dict()

    def test_sample_indices_properties(self):
        spec = SweepSpec(workload="saxpy", seeds=(0, 1, 2, 3),
                         latency_scales=(100, 200))
        n = len(spec.configs())
        idx = sample_indices(spec, n)
        assert idx == sorted(set(idx))
        assert all(0 <= i < n for i in idx)
        assert len(idx) == max(2, n // 16)
        assert idx == sample_indices(spec, n)  # deterministic
        # tiny batches validate everything they have
        assert len(sample_indices(spec, 1)) == 1
        assert sample_indices(spec, 0) == []

    def test_profile_is_cached(self):
        assert build_profile("saxpy", "demand") is build_profile(
            "saxpy", "demand"
        )
