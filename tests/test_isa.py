"""Unit tests for the ISA layer: opcodes, operands, instructions, kernels."""

import pytest

from repro.isa import (
    OP_INFO,
    Imm,
    Instruction,
    Kernel,
    KernelBuilder,
    Label,
    Opcode,
    P,
    Param,
    Pred,
    R,
    Reg,
    Unit,
    op_info,
    uses_global_memory,
)


class TestOpcodes:
    def test_every_opcode_has_info(self):
        for op in Opcode:
            info = op_info(op)
            assert info.latency >= 0
            assert isinstance(info.unit, Unit)

    def test_global_memory_ops_can_fault(self):
        for op in (Opcode.LD_GLOBAL, Opcode.ST_GLOBAL, Opcode.ATOM_GLOBAL):
            assert op_info(op).can_fault
            assert op_info(op).is_memory

    def test_shared_memory_ops_cannot_fault(self):
        for op in (Opcode.LD_SHARED, Opcode.ST_SHARED):
            assert not op_info(op).can_fault
            assert op_info(op).is_memory

    def test_stores_marked(self):
        assert op_info(Opcode.ST_GLOBAL).is_store
        assert op_info(Opcode.ATOM_GLOBAL).is_store
        assert not op_info(Opcode.LD_GLOBAL).is_store

    def test_sfu_ops_on_sfu_unit(self):
        for op in (Opcode.FDIV, Opcode.FSQRT, Opcode.FSIN, Opcode.FEXP):
            assert op_info(op).unit is Unit.SFU

    def test_control_ops(self):
        for op in (Opcode.BRA, Opcode.BAR, Opcode.EXIT, Opcode.TRAP):
            assert op_info(op).is_control


class TestOperands:
    def test_reg_bounds(self):
        assert Reg(0).index == 0
        assert Reg(254).index == 254
        with pytest.raises(ValueError):
            Reg(-1)
        with pytest.raises(ValueError):
            Reg(256)

    def test_pred_bounds(self):
        assert Pred(7).index == 7
        with pytest.raises(ValueError):
            Pred(8)

    def test_shorthands(self):
        assert R(3) == Reg(3)
        assert P(1) == Pred(1)

    def test_operands_hashable(self):
        assert len({R(1), R(1), R(2)}) == 2


class TestInstruction:
    def test_reg_sources_and_dests(self):
        inst = Instruction(Opcode.IADD, dest=R(3), srcs=(R(1), Imm(4)))
        assert inst.reg_dests() == (3,)
        assert inst.reg_srcs() == (1,)

    def test_pred_guard_counts_as_source(self):
        inst = Instruction(Opcode.MOV, dest=R(0), srcs=(Imm(1),), guard=P(2))
        assert 2 in inst.pred_srcs()

    def test_pred_dest(self):
        inst = Instruction(Opcode.ISETP, dest=P(0), srcs=(R(1), R(2)), cmp="lt")
        assert inst.pred_dests() == (0,)
        assert inst.reg_dests() == ()

    def test_uses_global_memory(self):
        ld = Instruction(Opcode.LD_GLOBAL, dest=R(0), srcs=(R(1),))
        add = Instruction(Opcode.IADD, dest=R(0), srcs=(R(1), R(2)))
        assert uses_global_memory(ld)
        assert not uses_global_memory(add)


class TestLabel:
    def test_double_bind_rejected(self):
        label = Label("x")
        label.resolve(3)
        with pytest.raises(ValueError):
            label.resolve(4)


class TestKernelValidation:
    def test_empty_kernel_rejected(self):
        with pytest.raises(ValueError):
            Kernel("empty").validate()

    def test_kernel_without_exit_rejected(self):
        k = Kernel("noexit", [Instruction(Opcode.NOP)])
        with pytest.raises(ValueError, match="EXIT"):
            k.validate()

    def test_unresolved_branch_rejected(self):
        k = Kernel(
            "bad",
            [Instruction(Opcode.BRA), Instruction(Opcode.EXIT)],
        )
        with pytest.raises(ValueError, match="branch"):
            k.validate()

    def test_valid_kernel(self):
        kb = KernelBuilder("ok")
        kb.nop()
        kb.exit()
        kernel = kb.build()
        assert len(kernel) == 2


class TestKernelBuilder:
    def test_unbound_label_rejected(self):
        kb = KernelBuilder("bad")
        target = kb.label("never")
        kb.bra(target)
        kb.exit()
        with pytest.raises(ValueError, match="unbound"):
            kb.build()

    def test_branch_fixup(self):
        kb = KernelBuilder("k")
        end = kb.label("end")
        kb.bra(end)
        kb.nop()
        kb.bind(end)
        kb.exit()
        kernel = kb.build()
        assert kernel.instructions[0].target == 2

    def test_if_sets_reconvergence(self):
        kb = KernelBuilder("k")
        kb.isetp(P(0), "lt", R(0), Imm(1))
        with kb.if_(P(0)):
            kb.nop()
        kb.exit()
        kernel = kb.build()
        bra = kernel.instructions[1]
        assert bra.op is Opcode.BRA
        assert bra.reconv == bra.target == 3

    def test_if_else_requires_orelse(self):
        kb = KernelBuilder("k")
        with pytest.raises(RuntimeError, match="orelse"):
            with kb.if_else(P(0)):
                kb.nop()

    def test_raw_numbers_become_immediates(self):
        kb = KernelBuilder("k")
        inst = kb.iadd(R(0), R(1), 5)
        assert inst.srcs[1] == Imm(5)

    def test_param_operand(self):
        kb = KernelBuilder("k")
        assert kb.param(2) == Param(2)

    def test_memory_helpers_set_offset_and_width(self):
        kb = KernelBuilder("k")
        ld = kb.ld_global(R(0), R(1), offset=16, width=8)
        assert ld.offset == 16 and ld.width == 8
        st = kb.st_global(R(1), R(2), offset=-4)
        assert st.offset == -4 and st.dest is None

    def test_atom_sets_op(self):
        kb = KernelBuilder("k")
        atom = kb.atom_global(R(0), R(1), Imm(1), atom="max")
        assert atom.atom == "max"

    def test_resource_attributes(self):
        kb = KernelBuilder("k", regs_per_thread=48, smem_bytes_per_block=1024)
        kb.exit()
        kernel = kb.build()
        assert kernel.regs_per_thread == 48
        assert kernel.smem_bytes_per_block == 1024
