"""Harness tests: result tables, experiment runners (tiny subsets), and
the pipeline diagrams of Figures 3/4/6/7."""

import pytest

from repro.harness import (
    ExperimentTable,
    geomean,
    run_fig10,
    run_fig11,
    run_fig12,
    run_fig13,
    run_fig14,
    run_scalability,
    run_table1,
    run_table2,
)
from repro.harness.diagrams import (
    EXAMPLE_PROGRAM,
    completion_cycle,
    issue_cycles,
    render,
    render_all,
)


class TestExperimentTable:
    def test_add_and_render(self):
        table = ExperimentTable("t", "demo", columns=["a", "b"])
        table.add_row("x", [1.0, 2.0])
        table.add_row("y", [3.0, 4.0])
        text = table.render()
        assert "GEOMEAN" in text and "demo" in text

    def test_row_length_checked(self):
        table = ExperimentTable("t", "demo", columns=["a", "b"])
        with pytest.raises(ValueError):
            table.add_row("x", [1.0])

    def test_geomean(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)
        assert geomean([]) == 0.0

    def test_column_and_dict(self):
        table = ExperimentTable("t", "demo", columns=["a"])
        table.add_row("x", [2.0])
        assert table.column("a") == [2.0]
        assert table.to_dict()["geomeans"] == [2.0]


class TestTables:
    def test_table1_text(self):
        text = run_table1()
        assert "1GHz" in text and "256KB" in text and "500 clk" in text

    def test_table2_matches_paper(self):
        table = run_table2()
        assert table.rows["8KB"][0] == pytest.approx(1.04, abs=0.05)
        assert table.rows["32KB"][3] == pytest.approx(2.37, abs=0.05)


@pytest.mark.slow
class TestExperimentRunners:
    """Single-benchmark smoke runs of each figure's experiment."""

    def test_fig10_single(self):
        table = run_fig10(workloads=["stream-sum"])
        for col in table.columns:
            assert 0.2 < table.rows["stream-sum"][table.columns.index(col)] <= 1.05

    def test_fig11_single(self):
        table = run_fig11(workloads=["stream-sum"], sizes=(8, 32))
        vals = table.rows["stream-sum"]
        assert all(0.2 < v <= 1.05 for v in vals)

    def test_fig12_single(self):
        table = run_fig12(
            workloads=["stream-sum"], interconnects=["nvlink"], ideal=False
        )
        assert 0.3 < table.rows["stream-sum"][0] < 3.0

    def test_fig13_single(self):
        table = run_fig13(workloads=["alloc-cycle"], interconnects=["nvlink"])
        assert table.rows["alloc-cycle"][0] > 0.3

    def test_fig14_single(self):
        table = run_fig14(workloads=["stream-sum"], interconnects=["nvlink"])
        assert table.rows["stream-sum"][0] > 0.3

    def test_scalability(self):
        table = run_scalability(
            workload="stream-sum", sm_counts=(4, 8), schemes=("wd-commit",)
        )
        assert len(table.rows) == 2


class TestDiagrams:
    def test_all_schemes_render(self):
        text = render_all()
        for label in ("Figure 3", "Figure 4", "Figure 6", "Figure 7"):
            assert label in text

    def test_baseline_matches_figure3(self):
        """Figure 3: B issues right behind A; D stalls one cycle on the WAR
        with C (released at C's operand read)."""
        cycles = issue_cycles("baseline")
        assert cycles["B"] == cycles["A"] + 1
        assert cycles["C"] == cycles["B"] + 1
        assert cycles["D"] > cycles["C"] + 1  # WAR stall

    def test_wd_commit_matches_figure4(self):
        """Figure 4: B cannot issue until A commits."""
        base = issue_cycles("baseline")
        wd = issue_cycles("wd-commit")
        assert wd["B"] > base["A"] + 6  # waits out A's memory latency

    def test_wd_lastcheck_between(self):
        wd = issue_cycles("wd-commit")
        lastcheck = issue_cycles("wd-lastcheck")
        base = issue_cycles("baseline")
        assert base["B"] < lastcheck["B"] < wd["B"]

    def test_replay_queue_matches_figure6(self):
        """Figure 6: A, B, C flow like baseline; D waits for C's last TLB
        check before overwriting R4."""
        base = issue_cycles("baseline")
        rq = issue_cycles("replay-queue")
        assert rq["A"] == base["A"]
        assert rq["B"] == base["B"]
        assert rq["C"] == base["C"]
        assert rq["D"] > base["D"]

    def test_operand_log_matches_figure7(self):
        """Figure 7: identical timing to the baseline."""
        assert issue_cycles("operand-log") == issue_cycles("baseline")
        assert completion_cycle("operand-log") == completion_cycle("baseline")

    def test_total_order(self):
        done = {s: completion_cycle(s) for s in
                ("baseline", "wd-commit", "wd-lastcheck", "replay-queue",
                 "operand-log")}
        assert done["wd-commit"] > done["wd-lastcheck"] > done["baseline"]
        assert done["operand-log"] == done["baseline"]

    def test_unknown_scheme(self):
        with pytest.raises(ValueError):
            render("rollercoaster")

    def test_program_is_papers_example(self):
        assert [i.label for i in EXAMPLE_PROGRAM] == ["A", "B", "C", "D"]
        assert EXAMPLE_PROGRAM[0].is_mem and EXAMPLE_PROGRAM[2].is_mem
