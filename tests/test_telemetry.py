"""Telemetry subsystem: counter registry, ring-buffer tracer, Chrome JSON
schema, disabled-mode no-op, and end-to-end event emission from real runs."""

import json
import os

import pytest

from repro.core import make_scheme
from repro.harness import run_traced
from repro.harness.__main__ import main as harness_main
from repro.system import GpuSimulator
from repro.telemetry import (
    ALL_EVENT_NAMES,
    CounterRegistry,
    RingBufferTracer,
    Telemetry,
    active,
    ev,
)
from repro.workloads import get_workload


# ---------------------------------------------------------------------------
# counter registry
# ---------------------------------------------------------------------------

class TestCounterRegistry:
    def test_counter_add_and_value(self):
        reg = CounterRegistry()
        c = reg.counter("gpu.sm[0].warp_stall.fault")
        c.add()
        c.add(4)
        assert reg.value("gpu.sm[0].warp_stall.fault") == 5
        # same path -> same counter object
        assert reg.counter("gpu.sm[0].warp_stall.fault") is c

    def test_gauge_reads_lazily(self):
        reg = CounterRegistry()
        state = {"n": 1}
        reg.gauge("gpu.tlb.miss", lambda: state["n"])
        assert reg.value("gpu.tlb.miss") == 1
        state["n"] = 7
        assert reg.value("gpu.tlb.miss") == 7

    def test_counter_gauge_namespace_collision(self):
        reg = CounterRegistry()
        reg.counter("a.b")
        with pytest.raises(ValueError):
            reg.gauge("a.b", lambda: 0)
        reg.gauge("a.c", lambda: 0)
        with pytest.raises(ValueError):
            reg.counter("a.c")

    def test_bind_stats_registers_numeric_fields(self):
        class Stats:
            def __init__(self):
                self.hits = 3
                self.misses = 4
                self.name = "not-numeric"

        reg = CounterRegistry()
        reg.bind_stats("gpu.tlb.l2", Stats())
        snap = reg.snapshot()
        assert snap["gpu.tlb.l2.hits"] == 3
        assert snap["gpu.tlb.l2.misses"] == 4
        assert "gpu.tlb.l2.name" not in snap

    def test_rollup_totals(self):
        reg = CounterRegistry()
        reg.counter("gpu.sm[0].stall").add(2)
        reg.counter("gpu.sm[1].stall").add(3)
        tree = reg.rollup()
        assert tree["gpu"]["_total"] == 5
        assert tree["gpu"]["sm[0]"]["stall"] == 2

    def test_aggregate_glob(self):
        reg = CounterRegistry()
        reg.counter("gpu.sm[0].warp_stall.fault").add(1)
        reg.counter("gpu.sm[1].warp_stall.fault").add(2)
        reg.counter("gpu.sm[1].warp_stall.scoreboard").add(9)
        assert reg.aggregate("gpu.sm[*].warp_stall.fault") == 3

    def test_sampling_series(self):
        reg = CounterRegistry()
        c = reg.counter("x.y")
        reg.sample(0.0)
        c.add(5)
        reg.sample(100.0)
        assert reg.series("x.y") == [(0.0, 0), (100.0, 5)]

    def test_render_filter(self):
        reg = CounterRegistry()
        reg.counter("a.one").add(1)
        reg.counter("b.two").add(2)
        out = reg.render(pattern="a.*")
        assert "a.one" in out and "b.two" not in out


# ---------------------------------------------------------------------------
# ring-buffer tracer
# ---------------------------------------------------------------------------

class TestRingBufferTracer:
    def test_events_retained_in_order(self):
        tr = RingBufferTracer(capacity=8)
        for i in range(5):
            tr.emit(ev.EV_ISSUE, float(i), "sm0", {"i": i})
        recs = list(tr.events())
        assert len(recs) == 5 == len(tr)
        assert [r[2] for r in recs] == [0.0, 1.0, 2.0, 3.0, 4.0]
        assert tr.dropped == 0

    def test_overflow_drops_oldest_hot_events(self):
        tr = RingBufferTracer(capacity=4)
        for i in range(10):
            tr.emit(ev.EV_ISSUE, float(i), "sm0")
        assert tr.recorded == 10
        assert tr.dropped == 6
        assert [r[2] for r in tr.events()] == [6.0, 7.0, 8.0, 9.0]

    def test_rare_events_survive_hot_flood(self):
        tr = RingBufferTracer(capacity=4)
        tr.emit(ev.EV_FAULT_RAISE, 0.0, "faults", {"vpn": 1})
        for i in range(100):
            tr.emit(ev.EV_ISSUE, float(i + 1), "sm0")
        names = tr.names()
        assert names[ev.EV_FAULT_RAISE] == 1  # not evicted by the flood

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            RingBufferTracer(capacity=0)

    def test_count_and_names(self):
        tr = RingBufferTracer()
        tr.emit(ev.EV_COMMIT, 1.0, "sm0")
        tr.emit(ev.EV_COMMIT, 2.0, "sm0")
        tr.emit_span(ev.EV_FAULT_RESOLVE, 1.0, 5.0, "faults")
        assert tr.count(ev.EV_COMMIT) == 2
        assert tr.names() == {ev.EV_COMMIT: 2, ev.EV_FAULT_RESOLVE: 1}


class TestChromeExport:
    def test_schema(self, tmp_path):
        tr = RingBufferTracer()
        tr.emit(ev.EV_ISSUE, 10.0, "sm0", {"op": "LD_GLOBAL"})
        tr.emit_span(ev.EV_FAULT_RESOLVE, 10.0, 90.0, "faults", {"group": 1})
        trace = tr.to_chrome(metadata={"scheme": "replay-queue"})
        # serializable, and shaped like the trace_event format
        json.loads(json.dumps(trace))
        assert isinstance(trace["traceEvents"], list)
        phases = {e["ph"] for e in trace["traceEvents"]}
        assert phases <= {"i", "X", "M"}
        for e in trace["traceEvents"]:
            assert {"name", "ph", "ts", "pid", "tid"} <= set(e) or e["ph"] == "M"
            if e["ph"] == "X":
                assert "dur" in e
        # thread-name metadata present for every tid used
        tids = {e["tid"] for e in trace["traceEvents"] if e["ph"] != "M"}
        named = {
            e["tid"] for e in trace["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert tids <= named
        assert trace["otherData"]["scheme"] == "replay-queue"

    def test_write_files(self, tmp_path):
        tel = Telemetry()
        tel.tracer.emit(ev.EV_ISSUE, 0.0, "sm0")
        tel.counters.counter("gpu.x").add(1)
        tel.sample(0.0)
        paths = tel.write(str(tmp_path / "run"))
        trace = json.load(open(paths["trace"]))
        counters = json.load(open(paths["counters"]))
        assert trace["traceEvents"]
        assert counters["counters"]["gpu.x"] == 1
        assert counters["samples"][0]["time"] == 0.0


# ---------------------------------------------------------------------------
# disabled mode
# ---------------------------------------------------------------------------

class TestDisabledMode:
    def test_active_normalizes(self):
        assert active(None) is None
        assert active(Telemetry(enabled=False)) is None
        tel = Telemetry()
        assert active(tel) is tel

    def test_disabled_telemetry_records_nothing(self):
        wl = get_workload("saxpy")
        tel = Telemetry(enabled=False)
        sim = GpuSimulator(
            wl.kernel, wl.trace(), wl.make_address_space(),
            scheme=make_scheme("replay-queue"), paging="demand",
            telemetry=tel,
        )
        res = sim.run()
        assert res.telemetry is None
        assert tel.tracer.recorded == 0
        assert tel.counters.paths() == []
        assert tel.counters.samples == []

    def test_timing_identical_with_and_without_telemetry(self):
        wl = get_workload("saxpy")
        runs = []
        for tel in (None, Telemetry()):
            sim = GpuSimulator(
                wl.kernel, wl.trace(), wl.make_address_space(),
                scheme=make_scheme("replay-queue"), paging="demand",
                telemetry=tel,
            )
            runs.append(sim.run().cycles)
        assert runs[0] == runs[1]


# ---------------------------------------------------------------------------
# end-to-end: a real run emits the expected fault/replay/switch events
# ---------------------------------------------------------------------------

class TestEndToEnd:
    def test_demand_run_emits_fault_and_tlb_events(self):
        wl = get_workload("saxpy")
        tel = Telemetry(sample_interval=500)
        sim = GpuSimulator(
            wl.kernel, wl.trace(), wl.make_address_space(),
            scheme=make_scheme("replay-queue"), paging="demand",
            telemetry=tel,
        )
        sim.run()
        names = tel.tracer.names()
        for expected in (
            ev.EV_ISSUE, ev.EV_COMMIT, ev.EV_BLOCK_LAUNCH, ev.EV_BLOCK_DONE,
            ev.EV_TLB_MISS, ev.EV_FAULT_RAISE, ev.EV_FAULT_RESOLVE,
            ev.EV_KERNEL,
        ):
            assert names.get(expected, 0) > 0, f"missing {expected}"
        assert set(names) <= set(ALL_EVENT_NAMES)
        # headline counters of the acceptance criteria
        snap = tel.counters.snapshot()
        assert "gpu.sm[0].warp_stall.cycles" in snap
        assert snap["gpu.tlb.miss"] > 0
        assert snap["gpu.fault.faults_raised"] > 0
        assert len(tel.counters.samples) > 1

    def test_block_switching_emits_squash_replay_switch(self, tmp_path):
        # sgemm under demand paging oversubscribes the SMs enough that
        # use case 1 actually preempts faulted blocks (~8s, the one big run)
        run = run_traced(
            "sgemm", scheme="replay-queue", paging="demand",
            block_switching=True, out_dir=str(tmp_path),
        )
        names = run.telemetry.tracer.names()
        assert names.get(ev.EV_BLOCK_SWITCH_OUT, 0) > 0
        assert names.get(ev.EV_BLOCK_SWITCH_IN, 0) > 0
        assert names.get(ev.EV_SQUASH, 0) > 0
        assert names.get(ev.EV_REPLAY, 0) > 0
        # squashed instructions are replayed at least once each
        assert names[ev.EV_REPLAY] >= names[ev.EV_SQUASH]

    def test_local_handling_emits_handler_holds(self):
        wl = get_workload("stream-sum")
        tel = Telemetry()
        sim = GpuSimulator(
            wl.kernel, wl.trace(), wl.make_address_space(),
            scheme=make_scheme("replay-queue"), paging="demand-output",
            local_handling=True, telemetry=tel,
        )
        res = sim.run()
        assert res.fault_stats.handled_locally > 0
        disables = [
            rec for rec in tel.tracer.events()
            if rec[0] == ev.EV_FETCH_DISABLE
            and rec[5] and rec[5].get("why") == "local-handler"
        ]
        assert disables

    def test_scheme_tags_in_trace_metadata(self):
        wl = get_workload("saxpy")
        tel = Telemetry()
        sim = GpuSimulator(
            wl.kernel, wl.trace(), wl.make_address_space(),
            scheme=make_scheme("operand-log", log_kbytes=16),
            telemetry=tel,
        )
        sim.run()
        other = tel.chrome_trace()["otherData"]
        assert other["scheme"] == "operand-log-16kb"
        assert other["log_kbytes"] == 16


# ---------------------------------------------------------------------------
# harness integration
# ---------------------------------------------------------------------------

class TestHarnessTrace:
    def test_run_traced_writes_artifacts(self, tmp_path):
        run = run_traced(
            "stream-sum", paging="demand", out_dir=str(tmp_path),
            sample_interval=500,
        )
        assert os.path.exists(run.paths["trace"])
        assert os.path.exists(run.paths["counters"])
        trace = json.load(open(run.paths["trace"]))
        names = {e["name"] for e in trace["traceEvents"]}
        assert ev.EV_FAULT_RAISE in names
        counters = json.load(open(run.paths["counters"]))
        assert any("warp_stall" in k for k in counters["counters"])
        table = run.table()
        assert table.artifacts["trace"] == run.paths["trace"]
        assert "ev:fault.raise" in table.rows

    def test_cli_trace_subcommand(self, tmp_path, capsys):
        rc = harness_main(
            ["trace", "saxpy", "--out", str(tmp_path),
             "--sample-interval", "500"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "telemetry summary" in out
        assert "perfetto" in out
        assert os.path.exists(tmp_path / "saxpy-replay-queue.trace.json")
        assert os.path.exists(tmp_path / "saxpy-replay-queue.counters.json")

    def test_cli_classic_paths_unchanged(self, capsys):
        assert harness_main(["table1"]) == 0
        assert "1GHz" in capsys.readouterr().out
