"""Unit tests for tools/check_doc_links.py's structural checks.

The link/anchor checks are exercised against the real tree by
tests/test_docs_and_api.py; these tests build tiny synthetic repos under
``tmp_path`` to pin the structural checks: orphaned-docs detection,
harness-subcommand validation, and serve-counter validation against the
``SERVE_COUNTERS`` manifest.
"""

import importlib.util
import sys
from pathlib import Path

CHECKER = Path(__file__).resolve().parent.parent / "tools" / "check_doc_links.py"

spec = importlib.util.spec_from_file_location("check_doc_links", CHECKER)
checker = importlib.util.module_from_spec(spec)
sys.modules["check_doc_links"] = checker
spec.loader.exec_module(checker)


#: the synthetic manifest the serve-counter tests parse (note the
#: parenthesized comment — the real manifest has those too)
METRICS_SRC = (
    "SERVE_COUNTERS = (\n"
    "    # slo counters (service level)\n"
    '    "serve.slo.completed",\n'
    '    "serve.tenant[*].submits",\n'
    '    "serve.tenant[*].cache.hits",\n'
    '    "serve.wire.frames_in",\n'
    ")\n"
)


def make_repo(tmp_path, readme="# Repo\n", docs=None, harness_src=True,
              metrics_src=False):
    """A minimal repo tree: README.md, docs/*.md, and (optionally) the
    harness/metrics source files the textual checks parse."""
    (tmp_path / "README.md").write_text(readme)
    (tmp_path / "docs").mkdir()
    for name, text in (docs or {}).items():
        (tmp_path / "docs" / name).write_text(text)
    if harness_src:
        pkg = tmp_path / "src" / "repro" / "harness"
        pkg.mkdir(parents=True)
        (pkg / "__main__.py").write_text(
            'SUBCOMMANDS = (\n    "trace",\n    "sweep",\n)\n'
        )
        (pkg / "experiments.py").write_text(
            'ALL_EXPERIMENTS = {\n    "fig10": run_fig10,\n'
            '    "table2": run_table2,\n}\n'
        )
    if metrics_src:
        pkg = tmp_path / "src" / "repro" / "serve"
        pkg.mkdir(parents=True)
        (pkg / "metrics.py").write_text(METRICS_SRC)
    return tmp_path


class TestOrphanDetection:
    def test_linked_doc_is_not_orphaned(self, tmp_path):
        root = make_repo(
            tmp_path,
            readme="# Repo\n\nSee [arch](docs/ARCH.md).\n",
            docs={"ARCH.md": "# Arch\n"},
        )
        assert checker.orphaned_docs(root) == []

    def test_unlinked_doc_is_orphaned(self, tmp_path):
        root = make_repo(
            tmp_path,
            readme="# Repo\n\nSee [arch](docs/ARCH.md).\n",
            docs={"ARCH.md": "# Arch\n", "LOST.md": "# Lost\n"},
        )
        orphans = checker.orphaned_docs(root)
        assert [p.name for p in orphans] == ["LOST.md"]
        assert checker.main([str(root)]) == 1

    def test_transitive_links_count(self, tmp_path):
        """Reachability is transitive: README -> A -> B keeps B alive."""
        root = make_repo(
            tmp_path,
            readme="# Repo\n\nSee [a](docs/A.md).\n",
            docs={
                "A.md": "# A\n\nAnd [b](B.md).\n",
                "B.md": "# B\n",
            },
        )
        assert checker.orphaned_docs(root) == []

    def test_link_inside_code_fence_does_not_count(self, tmp_path):
        """A fenced ``[x](y)`` snippet is not a real link; a doc only
        'linked' that way is still an orphan."""
        root = make_repo(
            tmp_path,
            readme="# Repo\n\n```\n[a](docs/A.md)\n```\n",
            docs={"A.md": "# A\n"},
        )
        assert [p.name for p in checker.orphaned_docs(root)] == ["A.md"]


class TestHarnessCommandValidation:
    def test_known_set_is_parsed_textually(self, tmp_path):
        root = make_repo(tmp_path)
        known = checker.known_subcommands(root)
        # SUBCOMMANDS + ALL_EXPERIMENTS keys + the extra dispatch targets
        assert known == {"trace", "sweep", "fig10", "table2",
                         "all", "table1", "diagrams"}

    def test_valid_commands_pass(self, tmp_path):
        root = make_repo(
            tmp_path,
            readme=(
                "# Repo\n\n```\npython -m repro.harness sweep lbm\n"
                "python -m repro.harness fig10 --quick\n"
                "python -m repro.harness --help\n"
                "python -m repro.harness <experiment>\n```\n"
                "Inline `python -m repro.harness trace` too.\n"
            ),
        )
        assert checker.main([str(root)]) == 0

    def test_unknown_subcommand_fails(self, tmp_path):
        root = make_repo(
            tmp_path,
            readme="# Repo\n\n```\npython -m repro.harness frobnicate\n```\n",
        )
        assert checker.main([str(root)]) == 1

    def test_code_fences_are_checked(self, tmp_path):
        """Commands live inside fences — the check must NOT strip them
        the way the link check does."""
        root = make_repo(
            tmp_path,
            readme="# Repo\n\n```sh\npython -m repro.harness nope\n```\n",
        )
        found = list(checker.check_harness_commands(
            root / "README.md", checker.known_subcommands(root)
        ))
        assert len(found) == 1
        assert "nope" in found[0][1]

    def test_missing_source_tree_skips_check(self, tmp_path):
        root = make_repo(
            tmp_path,
            readme="# Repo\n\n```\npython -m repro.harness frobnicate\n```\n",
            harness_src=False,
        )
        assert checker.known_subcommands(root) is None
        assert checker.main([str(root)]) == 0


class TestServeCounterValidation:
    def test_manifest_is_parsed_past_comment_parens(self, tmp_path):
        """The tuple parse must span inline comments that contain
        parentheses (the real manifest has them)."""
        root = make_repo(tmp_path, metrics_src=True)
        known = checker.known_serve_counters(root)
        assert known == {
            "serve.slo.completed",
            "serve.tenant[*].submits",
            "serve.tenant[*].cache.hits",
            "serve.wire.frames_in",
        }

    def test_valid_counters_pass(self, tmp_path):
        root = make_repo(
            tmp_path,
            readme=(
                "# Repo\n\nCounted in `serve.slo.completed` and\n"
                "`serve.tenant[t].submits`; see `serve.wire.frames_in`.\n"
            ),
            metrics_src=True,
        )
        assert checker.main([str(root)]) == 0

    def test_concrete_index_normalizes_to_wildcard(self, tmp_path):
        """``serve.tenant[storm].submits`` in a doc means the manifest's
        ``serve.tenant[*].submits`` slot."""
        root = make_repo(
            tmp_path,
            readme="# Repo\n\n`serve.tenant[storm].submits`\n",
            metrics_src=True,
        )
        assert checker.main([str(root)]) == 0

    def test_brace_shorthand_expands(self, tmp_path):
        root = make_repo(
            tmp_path,
            readme=(
                "# Repo\n\n`serve.tenant[t].{submits,cache.hits}`\n"
            ),
            metrics_src=True,
        )
        assert checker.main([str(root)]) == 0

    def test_wildcard_and_namespace_references_pass(self, tmp_path):
        root = make_repo(
            tmp_path,
            readme=(
                "# Repo\n\nAll of `serve.*`; the `serve.wire` family;\n"
                "`serve.tenant[t].cache.*` gauges.\n"
            ),
            metrics_src=True,
        )
        assert checker.main([str(root)]) == 0

    def test_unknown_counter_fails(self, tmp_path):
        root = make_repo(
            tmp_path,
            readme="# Repo\n\nSee `serve.slo.nonexistent`.\n",
            metrics_src=True,
        )
        assert checker.main([str(root)]) == 1

    def test_unknown_counter_in_code_fence_fails(self, tmp_path):
        """Counter names live inside fences and tables — the check must
        NOT strip fences the way the link check does."""
        root = make_repo(
            tmp_path,
            readme="# Repo\n\n```\nserve.wire.frames_inn\n```\n",
            metrics_src=True,
        )
        found = list(checker.check_serve_counters(
            root / "README.md", checker.known_serve_counters(root)
        ))
        assert len(found) == 1
        assert "frames_inn" in found[0][1]

    def test_module_paths_do_not_match(self, tmp_path):
        """``repro.serve.core`` is a module path, not a counter."""
        root = make_repo(
            tmp_path,
            readme="# Repo\n\nSee `repro.serve.core` for details.\n",
            metrics_src=True,
        )
        assert checker.main([str(root)]) == 0

    def test_filesystem_paths_do_not_match(self, tmp_path):
        """``/tmp/serve.sock`` is a socket path, not a counter."""
        root = make_repo(
            tmp_path,
            readme="# Repo\n\n```\nserve --socket /tmp/serve.sock\n```\n",
            metrics_src=True,
        )
        assert checker.main([str(root)]) == 0

    def test_missing_manifest_skips_check(self, tmp_path):
        root = make_repo(
            tmp_path,
            readme="# Repo\n\n`serve.slo.nonexistent`\n",
            metrics_src=False,
        )
        assert checker.known_serve_counters(root) is None
        assert checker.main([str(root)]) == 0


class TestRealTree:
    def test_repo_docs_are_clean(self):
        """The shipping tree passes the extended checker end to end."""
        assert checker.main([str(CHECKER.parent.parent)]) == 0
