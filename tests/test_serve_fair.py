"""Weighted-fair admission and tenant cache isolation tests: the
deficit-round-robin grant queue, the partitioned result cache, the
rejection taxonomy (distinct codes *and* reasons per class), closed-loop
clients under the virtual-time driver, the fairness experiment, and the
``SERVE_COUNTERS`` manifest staying honest against the live registry
(docs/SERVING.md)."""

import re

import pytest

from repro.harness.hashing import content_hash
from repro.serve import (
    ClosedLoopClient,
    DeficitRoundRobin,
    GpuService,
    PartitionedResultCache,
    SERVE_COUNTERS,
    ServiceCore,
    ServiceUnavailable,
    TenantPolicy,
    VirtualTimeDriver,
    fairness_experiment,
)
from repro.serve.core import (
    QueueFull,
    ServeRejection,
    TenantQuarantined,
    UnknownTenant,
)
from repro.serve.loadgen import fairness_run
from repro.serve.wire import register_wire_counters

REJECTION_CLASSES = (
    ServeRejection, UnknownTenant, QueueFull,
    TenantQuarantined, ServiceUnavailable,
)


def scaled_stub(spec):
    """Deterministic stub data plane whose cycle cost scales the way
    the real executor does: ``time_scale`` divides the simulated
    fault-service latency, so a higher scale means a shorter kernel."""
    ts = float(spec.get("time_scale", 1.0))
    cycles = 40_000.0 / ts + 250.0 * (int(spec.get("seed", 0)) % 5)
    return {
        "workload": spec.get("workload", "stub"),
        "cycles": cycles,
        "faults_raised": 0,
        "state_digest": content_hash(spec),
    }


class TestDeficitRoundRobin:
    def test_weights_shape_the_grant_order(self):
        q = DeficitRoundRobin()
        q.register("a", weight=2)
        q.register("b", weight=1)
        for i in range(9):
            q.push("a", f"a{i}")
            q.push("b", f"b{i}")
        grants = [q.pop()[0] for _ in range(9)]
        # weight 2 earns two consecutive grants per round
        assert grants == ["a", "a", "b", "a", "a", "b", "a", "a", "b"]

    def test_priority_classes_drain_strictly_first(self):
        q = DeficitRoundRobin()
        q.register("lo", weight=5, priority=0)
        q.register("hi", weight=1, priority=1)
        for i in range(3):
            q.push("lo", i)
            q.push("hi", i)
        grants = [q.pop()[0] for _ in range(6)]
        assert grants == ["hi", "hi", "hi", "lo", "lo", "lo"]

    def test_idle_tenant_does_not_bank_credit(self):
        """A queue that goes empty forfeits its deficit: returning
        after an idle stretch earns no burst."""
        q = DeficitRoundRobin()
        q.register("a", weight=1)
        q.register("b", weight=1)
        q.push("a", 1)
        assert q.pop() == ("a", 1)  # b idle the whole time
        for i in range(4):
            q.push("a", i)
            q.push("b", i)
        grants = [q.pop()[0] for _ in range(8)]
        assert grants.count("a") == grants.count("b") == 4

    def test_fifo_within_a_tenant(self):
        q = DeficitRoundRobin()
        q.register("a")
        q.push("a", 1)
        q.push("a", 2)
        assert q.pop() == ("a", 1)
        assert q.pop() == ("a", 2)

    def test_empty_pop_and_len(self):
        q = DeficitRoundRobin()
        q.register("a")
        assert q.pop() is None
        assert len(q) == 0
        q.push("a", 1)
        assert len(q) == 1
        assert q.depth("a") == 1

    def test_register_is_idempotent_and_validates(self):
        q = DeficitRoundRobin()
        q.register("a", weight=2)
        q.register("a", weight=2)
        assert q.registered("a")
        with pytest.raises(ValueError):
            q.register("b", weight=0)

    def test_snapshot(self):
        q = DeficitRoundRobin()
        q.register("a", weight=2, priority=1)
        q.push("a", 1)
        snap = q.snapshot()
        assert snap["a"]["weight"] == 2
        assert snap["a"]["priority"] == 1
        assert snap["a"]["depth"] == 1


class TestPartitionedCache:
    def test_shares_size_partitions(self):
        cache = PartitionedResultCache(total_capacity=12)
        a = cache.register_tenant("a", share=2)
        b = cache.register_tenant("b", share=1)
        assert a.capacity == 8
        assert b.capacity == 4

    def test_partition_floor_is_one(self):
        cache = PartitionedResultCache(total_capacity=2)
        for name in ("a", "b", "c", "d"):
            cache.register_tenant(name)
        assert all(
            cache.partition(n).capacity >= 1 for n in ("a", "b", "c", "d")
        )

    def test_one_tenant_cannot_evict_another(self):
        """The structural isolation property: a flood of misses from one
        tenant never touches another tenant's partition."""
        cache = PartitionedResultCache(total_capacity=8)
        cache.register_tenant("steady")
        cache.register_tenant("storm")
        steady_key = cache.key({"w": "mine"})
        cache.put("steady", steady_key, {"v": 1})
        for i in range(1000):
            cache.put("storm", cache.key({"w": i}), {"v": i})
        assert cache.get("steady", steady_key) == {"v": 1}
        assert cache.partition("steady").evictions == 0
        assert cache.partition("storm").evictions > 0

    def test_unknown_tenant_raises(self):
        cache = PartitionedResultCache()
        with pytest.raises(KeyError, match="no cache partition"):
            cache.partition("ghost")

    def test_aggregate_stats_nest_per_tenant(self):
        cache = PartitionedResultCache(total_capacity=8)
        cache.register_tenant("a")
        key = cache.key({"w": 1})
        assert cache.get("a", key) is None
        cache.put("a", key, {"v": 1})
        assert cache.get("a", key) == {"v": 1}
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["tenants"]["a"]["hits"] == 1
        assert len(cache) == 1

    def test_validates_inputs(self):
        with pytest.raises(ValueError):
            PartitionedResultCache(total_capacity=0)
        cache = PartitionedResultCache()
        with pytest.raises(ValueError):
            cache.register_tenant("a", share=0)


class TestRejectionTaxonomy:
    def test_every_class_has_a_distinct_code(self):
        codes = [cls.code for cls in REJECTION_CLASSES]
        assert len(set(codes)) == len(codes), codes

    def test_every_class_has_a_distinct_reason(self):
        """The bug this pins down: unknown-tenant and queue-full used
        to share one generic reason string, so wire clients (and logs)
        could not tell a typo'd tenant from backpressure."""
        reasons = [cls.reason for cls in REJECTION_CLASSES]
        assert len(set(reasons)) == len(reasons), reasons

    def test_to_dict_carries_the_taxonomy(self):
        rej = UnknownTenant("ghost", "no registration")
        data = rej.to_dict()
        assert data["code"] == "unknown-tenant"
        assert data["reason"] == UnknownTenant.reason
        assert data["tenant"] == "ghost"
        assert data["detail"] == "no registration"

    def test_message_leads_with_the_code(self):
        for cls in REJECTION_CLASSES:
            assert str(cls("t", "d")).startswith(f"[{cls.code}]")


class TestClosedLoopDriver:
    def _run(self, seed=0, fair=True):
        core = ServiceCore()
        core.register_tenant("t", TenantPolicy(max_streams=2,
                                               max_queue_depth=16))
        clients = [
            ClosedLoopClient(
                tenant="t", client_id=c,
                menu=[{"workload": "w", "time_scale": 8.0, "seed": s}
                      for s in range(6)],
                requests=10, think_mean_cycles=2_000.0, seed=seed,
            )
            for c in range(2)
        ]
        driver = VirtualTimeDriver(
            core, num_gpus=1, fair=fair, executor=scaled_stub
        )
        return driver.run(clients=clients, label="closed")

    def test_every_client_settles_every_request(self):
        report = self._run()
        loop = report["closed_loop"]["t"]
        assert loop["clients"] == 2
        assert loop["issued"] == loop["settled"] == loop["target"] == 20
        assert report["tenants"]["t"]["completions"] > 0

    def test_bit_reproducible(self):
        assert self._run(seed=3) == self._run(seed=3)

    def test_seed_changes_the_schedule(self):
        assert self._run(seed=0)["digest"] != self._run(seed=1)["digest"]

    def test_fair_flag_recorded(self):
        assert self._run(fair=True)["fair"] is True
        assert self._run(fair=False)["fair"] is False


FAIR_KW = dict(
    clients_per_tenant=2, requests_per_client=8,
    storm_clients=2, storm_requests_per_client=10,
    executor=scaled_stub,
)


class TestFairnessExperiment:
    def test_storm_cannot_starve_steady_tenants(self):
        rep = fairness_experiment(seed=0, **FAIR_KW)
        assert rep["fair_contained"] is True
        assert rep["storm_completions"] > 0
        for name, s in rep["fair"].items():
            assert s["within_bound"], (name, s)
            assert s["storm_induced_evictions"] == 0

    def test_reproducible_from_the_seed(self):
        a = fairness_experiment(seed=2, **FAIR_KW)
        b = fairness_experiment(seed=2, **FAIR_KW)
        assert a["contended"]["digest"] == b["contended"]["digest"]
        assert a["fifo"]["digest"] == b["fifo"]["digest"]
        assert a["fair"] == b["fair"]

    def test_fair_and_fifo_schedules_differ(self):
        """The counterfactual must actually be a different schedule —
        otherwise the recorded fifo_ratio is theater."""
        rep = fairness_experiment(seed=0, **FAIR_KW)
        assert rep["contended"]["digest"] != rep["fifo"]["digest"]

    def test_storm_is_bounded_not_banned(self):
        """Weighted-fair is not quarantine: the storm tenant still gets
        its weight-1 share and completes its work."""
        rep = fairness_run(0, True, fair=True, **FAIR_KW)
        assert rep["tenants"]["storm"]["completions"] == 20
        assert rep["tenants"]["storm"]["quarantines"] == 0


class TestWeightedPolicies:
    def test_summary_reports_weight_and_priority(self):
        core = ServiceCore()
        core.register_tenant(
            "t", TenantPolicy(weight=3, priority=1)
        )
        summary = core.tenant_summary("t")
        assert summary["weight"] == 3
        assert summary["priority"] == 1

    def test_gpu_slots_validates(self):
        with pytest.raises(ValueError):
            GpuService(gpu_slots=0)


class TestServeCountersManifest:
    def test_manifest_matches_the_live_registry(self):
        """Register everything the serving layer can register (core,
        tenant, cache partitions, wire counters) and require the
        ``SERVE_COUNTERS`` manifest to match exactly — both ways."""
        service = GpuService(isolated=False, executor=scaled_stub)
        service.register_tenant("t", TenantPolicy())
        register_wire_counters(service.core.counters)
        live = {
            re.sub(r"\[[^\]]+\]", "[*]", path)
            for path in service.core.counters.snapshot()
            if path.startswith("serve.")
        }
        manifest = set(SERVE_COUNTERS)
        assert live - manifest == set(), (
            f"registered but missing from SERVE_COUNTERS: "
            f"{sorted(live - manifest)}"
        )
        assert manifest - live == set(), (
            f"in SERVE_COUNTERS but never registered: "
            f"{sorted(manifest - live)}"
        )

    def test_manifest_is_well_formed(self):
        assert len(set(SERVE_COUNTERS)) == len(SERVE_COUNTERS)
        for name in SERVE_COUNTERS:
            assert name.startswith("serve."), name
