"""Wire front-end tests: NDJSON framing, the version handshake, the
daemon's op surface, typed rejection rehydration on the client, and —
the part that earns its keep — the error paths: malformed frames,
oversized frames, protocol mismatches, clients vanishing mid-request,
and daemon shutdown with requests still in flight (docs/SERVING.md)."""

import json
import socket
import threading
import time

import pytest

from repro.serve import (
    GpuService,
    MAX_FRAME_BYTES,
    ServeClient,
    ServeDaemon,
    ServiceUnavailable,
    UnknownTenant,
    WIRE_PROTOCOL_VERSION,
    WireError,
)
from repro.serve.client import rejection_from_wire
from repro.serve.core import QueueFull, ServeRejection, TenantQuarantined
from repro.serve.wire import (
    FrameTooLarge,
    MalformedFrame,
    decode_frame,
    encode_frame,
    policy_from_wire,
    read_frame,
)


def stub_executor(spec):
    """Fast in-process data plane; ``gate`` blocks until released so
    tests can hold a request in flight deliberately."""
    gate = spec.get("_gate")
    if gate is not None:
        _GATES[gate].wait(10.0)
    return {
        "workload": spec.get("workload", "stub"),
        "cycles": 100.0 + float(spec.get("seed", 0)),
        "faults_raised": 0,
    }


#: named events the stub executor blocks on (spec values must stay
#: JSON-serializable, so specs carry the gate *name*)
_GATES = {}


@pytest.fixture()
def gate():
    _GATES["g"] = threading.Event()
    yield "g"
    _GATES["g"].set()
    _GATES.pop("g", None)


@pytest.fixture()
def daemon(tmp_path):
    service = GpuService(
        isolated=False, max_attempts=2, executor=stub_executor
    )
    d = ServeDaemon(service, path=str(tmp_path / "serve.sock"))
    d.start()
    yield d
    d.shutdown(drain=False)


def raw_connect(address):
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.settimeout(10.0)
    sock.connect(address)
    return sock


def raw_call(sock, payload_bytes):
    sock.sendall(payload_bytes)
    buf = b""
    while not buf.endswith(b"\n"):
        chunk = sock.recv(65536)
        if not chunk:
            return None
        buf += chunk
    return json.loads(buf)


def hello(sock, protocol=WIRE_PROTOCOL_VERSION):
    return raw_call(
        sock, encode_frame({"op": "hello", "protocol": protocol})
    )


class TestFraming:
    def test_round_trip(self):
        frame = {"op": "ping", "n": 1}
        assert decode_frame(encode_frame(frame)) == frame

    def test_encode_rejects_oversized(self):
        with pytest.raises(FrameTooLarge):
            encode_frame({"blob": "x" * (MAX_FRAME_BYTES + 1)})

    def test_decode_rejects_bad_json(self):
        with pytest.raises(MalformedFrame):
            decode_frame(b"not json\n")

    def test_decode_rejects_non_object(self):
        with pytest.raises(MalformedFrame):
            decode_frame(b"[1, 2]\n")

    def test_read_frame_eof_is_none(self):
        import io

        assert read_frame(io.BytesIO(b"")) is None

    def test_read_frame_mid_frame_disconnect(self):
        import io

        with pytest.raises(WireError, match="mid-frame"):
            read_frame(io.BytesIO(b'{"op": "ping"}'))  # no newline

    def test_policy_from_wire_rejects_unknown_fields(self):
        with pytest.raises(WireError, match="unknown policy field"):
            policy_from_wire({"no_such_knob": 3})

    def test_policy_from_wire_coerces(self):
        policy = policy_from_wire({"weight": 3, "priority": 1})
        assert policy.weight == 3
        assert policy.priority == 1


class TestHandshake:
    def test_hello_returns_server_info(self, daemon):
        with ServeClient(daemon.address) as client:
            assert client.server_info["protocol"] == WIRE_PROTOCOL_VERSION
            assert client.server_info["server"] == "repro.serve"

    def test_version_mismatch_is_refused_and_counted(self, daemon):
        sock = raw_connect(daemon.address)
        reply = hello(sock, protocol=WIRE_PROTOCOL_VERSION + 1)
        sock.close()
        assert reply["ok"] is False
        assert reply["error"]["code"] == "version-mismatch"
        assert daemon.core.counters.value(
            "serve.wire.version_mismatch"
        ) == 1.0

    def test_client_raises_on_version_refusal(self, daemon, monkeypatch):
        import repro.serve.client as client_mod

        monkeypatch.setattr(
            client_mod, "WIRE_PROTOCOL_VERSION", WIRE_PROTOCOL_VERSION + 9
        )
        with pytest.raises(WireError, match="version-mismatch"):
            ServeClient(daemon.address).connect()

    def test_first_frame_must_be_hello(self, daemon):
        sock = raw_connect(daemon.address)
        reply = raw_call(sock, encode_frame({"op": "ping"}))
        sock.close()
        assert reply["error"]["code"] == "handshake-required"


class TestErrorPaths:
    def test_malformed_frame_is_reported_and_counted(self, daemon):
        sock = raw_connect(daemon.address)
        assert hello(sock)["ok"]
        reply = raw_call(sock, b"this is not json\n")
        sock.close()
        assert reply["error"]["code"] == "malformed-frame"
        assert daemon.core.counters.value("serve.wire.malformed") == 1.0

    def test_oversized_frame_is_reported_and_counted(self, daemon):
        sock = raw_connect(daemon.address)
        assert hello(sock)["ok"]
        reply = raw_call(sock, b"x" * (MAX_FRAME_BYTES + 2) + b"\n")
        sock.close()
        assert reply["error"]["code"] == "frame-too-large"
        assert daemon.core.counters.value("serve.wire.oversized") == 1.0

    def test_unknown_op(self, daemon):
        sock = raw_connect(daemon.address)
        assert hello(sock)["ok"]
        reply = raw_call(sock, encode_frame({"op": "frobnicate"}))
        sock.close()
        assert reply["error"]["code"] == "unknown-op"

    def test_unknown_request_id(self, daemon):
        with ServeClient(daemon.address) as client:
            with pytest.raises(WireError, match="unknown-id"):
                client.result("r999999")

    def test_client_disconnect_mid_request_leaves_daemon_healthy(
        self, daemon, gate
    ):
        """A client that submits and vanishes must not wedge anything:
        the request completes server-side and a second client can still
        fetch it by id."""
        with ServeClient(daemon.address) as first:
            first.register("t")
            rid = first.submit("t", {"workload": "w", "_gate": gate})
            # disconnect with the request still in flight
        assert daemon.pending_requests() == 1
        _GATES[gate].set()
        with ServeClient(daemon.address) as second:
            result = second.result(rid, wait=10.0)
        assert result is not None and result["ok"]

    def test_mid_frame_disconnect_is_counted(self, daemon):
        """Dropping the connection halfway through a frame (no trailing
        newline) is the unclean-disconnect path; a clean EOF between
        frames is not counted."""
        sock = raw_connect(daemon.address)
        assert hello(sock)["ok"]
        sock.sendall(b'{"op": "po')  # partial frame, then vanish
        sock.close()
        deadline = time.time() + 5.0
        while time.time() < deadline:
            if daemon.core.counters.value("serve.wire.disconnects") >= 1.0:
                break
            time.sleep(0.02)
        assert daemon.core.counters.value("serve.wire.disconnects") == 1.0


class TestOps:
    def test_register_submit_poll_result(self, daemon):
        with ServeClient(daemon.address) as client:
            info = client.register("alpha", weight=2, priority=1)
            assert info["policy"]["weight"] == 2
            rid = client.submit("alpha", {"workload": "w", "seed": 5})
            assert rid.startswith("r")
            result = client.result(rid, wait=10.0)
            assert result["ok"] is True
            assert result["cached"] is False
            assert result["value"]["cycles"] == 105.0
            assert client.poll(
                client.submit("alpha", {"workload": "w", "seed": 5})
            ) in ("pending", "done")

    def test_cache_hit_over_the_wire(self, daemon):
        with ServeClient(daemon.address) as client:
            client.register("alpha")
            spec = {"workload": "w", "seed": 9}
            first = client.request("alpha", spec, wait=10.0)
            second = client.request("alpha", spec, wait=10.0)
        assert first["cached"] is False
        assert second["cached"] is True

    def test_stats_expose_wire_and_cache(self, daemon):
        with ServeClient(daemon.address) as client:
            client.register("alpha")
            client.request("alpha", {"workload": "w"}, wait=10.0)
            stats = client.stats()
        assert stats["wire"]["frames_in"] > 0
        assert stats["wire"]["frames_out"] > 0
        assert "alpha" in stats["cache"]["tenants"]
        assert stats["summary"]["tenants"]["alpha"]["completions"] == 1
        assert stats["draining"] is False

    def test_unknown_tenant_rejected_eagerly_and_typed(self, daemon):
        with ServeClient(daemon.address) as client:
            with pytest.raises(UnknownTenant) as exc:
                client.submit("ghost", {"workload": "w"})
        assert "[unknown-tenant]" in str(exc.value)
        assert daemon.core.counters.value("serve.wire.rejections") == 1.0


class TestRejectionRehydration:
    def test_codes_map_to_types(self):
        for cls in (ServeRejection, UnknownTenant, QueueFull,
                    TenantQuarantined, ServiceUnavailable):
            rej = cls("t", "detail text")
            back = rejection_from_wire(rej.to_dict())
            assert type(back) is cls
            assert back.tenant == "t"
            assert back.detail == "detail text"

    def test_unknown_code_falls_back_to_base(self):
        back = rejection_from_wire(
            {"code": "never-heard-of-it", "tenant": "t", "detail": "d"}
        )
        assert type(back) is ServeRejection


class TestShutdown:
    def test_drain_completes_in_flight_requests(self, tmp_path, gate):
        """Shutdown with drain: the in-flight request finishes, new
        submissions are shed with the typed ServiceUnavailable, and no
        serve threads survive."""
        service = GpuService(
            isolated=False, max_attempts=2, executor=stub_executor
        )
        daemon = ServeDaemon(service, path=str(tmp_path / "s.sock"))
        daemon.start()
        client = ServeClient(daemon.address).connect()
        client.register("t")
        client.submit("t", {"workload": "w", "_gate": gate})
        assert daemon.pending_requests() == 1
        reply = client.shutdown(drain=True)
        assert reply["draining"] is True
        # the daemon is draining: new submissions shed immediately
        with pytest.raises(ServiceUnavailable):
            client.submit("t", {"workload": "w2"})
        _GATES[gate].set()
        assert daemon.join(timeout=10.0), "daemon did not stop"
        assert daemon.pending_requests() == 0
        client.close()
        deadline = time.time() + 5.0
        while time.time() < deadline:
            alive = [
                t.name for t in threading.enumerate()
                if t.name.startswith("serve-") or "asyncio" in t.name
            ]
            if not alive:
                break
            time.sleep(0.05)
        assert not alive, f"threads survived shutdown: {alive}"

    def test_shutdown_without_drain_cancels(self, tmp_path, gate):
        service = GpuService(
            isolated=False, max_attempts=2, executor=stub_executor
        )
        daemon = ServeDaemon(service, path=str(tmp_path / "s.sock"))
        daemon.start()
        with ServeClient(daemon.address) as client:
            client.register("t")
            client.submit("t", {"workload": "w", "_gate": gate})
            daemon.shutdown(drain=False)
        assert daemon.join(timeout=10.0)

    def test_socket_file_removed(self, tmp_path):
        import os

        path = str(tmp_path / "s.sock")
        service = GpuService(isolated=False, executor=stub_executor)
        with ServeDaemon(service, path=path):
            assert os.path.exists(path)
        assert not os.path.exists(path)

    def test_shutdown_is_idempotent(self, tmp_path):
        service = GpuService(isolated=False, executor=stub_executor)
        daemon = ServeDaemon(service, path=str(tmp_path / "s.sock"))
        daemon.start()
        daemon.shutdown()
        daemon.shutdown()  # second call must be a no-op
