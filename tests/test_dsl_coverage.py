"""Exhaustive DSL emission coverage: every helper emits the right opcode
with the right operand shapes, and executes under the interpreter."""

import pytest

from repro.functional import Interpreter, Launch
from repro.isa import Imm, KernelBuilder, Opcode, P, R
from repro.vm import SparseMemory

EMITTERS = [
    ("iadd", lambda kb: kb.iadd(R(1), R(0), 1), Opcode.IADD),
    ("isub", lambda kb: kb.isub(R(1), R(0), 1), Opcode.ISUB),
    ("imul", lambda kb: kb.imul(R(1), R(0), 2), Opcode.IMUL),
    ("imad", lambda kb: kb.imad(R(1), R(0), 2, 3), Opcode.IMAD),
    ("imin", lambda kb: kb.imin(R(1), R(0), 2), Opcode.IMIN),
    ("imax", lambda kb: kb.imax(R(1), R(0), 2), Opcode.IMAX),
    ("shl", lambda kb: kb.shl(R(1), R(0), 1), Opcode.SHL),
    ("shr", lambda kb: kb.shr(R(1), R(0), 1), Opcode.SHR),
    ("and_", lambda kb: kb.and_(R(1), R(0), 3), Opcode.AND),
    ("or_", lambda kb: kb.or_(R(1), R(0), 3), Opcode.OR),
    ("xor", lambda kb: kb.xor(R(1), R(0), 3), Opcode.XOR),
    ("fadd", lambda kb: kb.fadd(R(1), R(0), 1.0), Opcode.FADD),
    ("fsub", lambda kb: kb.fsub(R(1), R(0), 1.0), Opcode.FSUB),
    ("fmul", lambda kb: kb.fmul(R(1), R(0), 2.0), Opcode.FMUL),
    ("ffma", lambda kb: kb.ffma(R(1), R(0), 2.0, 1.0), Opcode.FFMA),
    ("fmin", lambda kb: kb.fmin(R(1), R(0), 2.0), Opcode.FMIN),
    ("fmax", lambda kb: kb.fmax(R(1), R(0), 2.0), Opcode.FMAX),
    ("fdiv", lambda kb: kb.fdiv(R(1), R(0), 2.0), Opcode.FDIV),
    ("fsqrt", lambda kb: kb.fsqrt(R(1), R(0)), Opcode.FSQRT),
    ("frsqrt", lambda kb: kb.frsqrt(R(1), R(0)), Opcode.FRSQRT),
    ("fsin", lambda kb: kb.fsin(R(1), R(0)), Opcode.FSIN),
    ("fcos", lambda kb: kb.fcos(R(1), R(0)), Opcode.FCOS),
    ("fexp", lambda kb: kb.fexp(R(1), R(0)), Opcode.FEXP),
    ("flog", lambda kb: kb.flog(R(1), R(0)), Opcode.FLOG),
    ("mov", lambda kb: kb.mov(R(1), R(0)), Opcode.MOV),
    ("i2f", lambda kb: kb.i2f(R(1), R(0)), Opcode.I2F),
    ("f2i", lambda kb: kb.f2i(R(1), R(0)), Opcode.F2I),
    ("sel", lambda kb: kb.sel(R(1), P(0), R(0), 1.0), Opcode.SEL),
    ("nop", lambda kb: kb.nop(), Opcode.NOP),
]


class TestEmitters:
    @pytest.mark.parametrize("name,emit,op", EMITTERS, ids=[e[0] for e in EMITTERS])
    def test_emits_and_runs(self, name, emit, op):
        kb = KernelBuilder("t", regs_per_thread=8)
        inst = emit(kb)
        kb.exit()
        assert inst.op is op
        kernel = kb.build()
        Interpreter(memory=SparseMemory()).run(Launch(kernel, 1, 32))

    def test_memory_emitters(self):
        kb = KernelBuilder("t", regs_per_thread=8)
        assert kb.ld_global(R(1), R(0)).op is Opcode.LD_GLOBAL
        assert kb.st_global(R(0), R(1)).op is Opcode.ST_GLOBAL
        assert kb.ld_shared(R(1), R(0)).op is Opcode.LD_SHARED
        assert kb.st_shared(R(0), R(1)).op is Opcode.ST_SHARED
        assert kb.atom_global(R(2), R(0), R(1)).op is Opcode.ATOM_GLOBAL
        assert kb.malloc(R(1), 64).op is Opcode.MALLOC
        assert kb.free(R(1)).op is Opcode.FREE
        assert kb.bar().op is Opcode.BAR
        assert kb.trap().op is Opcode.TRAP

    def test_pc_property(self):
        kb = KernelBuilder("t")
        assert kb.pc == 0
        kb.nop()
        assert kb.pc == 1

    def test_setp_cmp_recorded(self):
        kb = KernelBuilder("t")
        assert kb.isetp(P(0), "ge", R(0), 1).cmp == "ge"
        assert kb.fsetp(P(1), "ne", R(0), 1.0).cmp == "ne"

    def test_guard_kwargs_flow_through(self):
        kb = KernelBuilder("t")
        inst = kb.iadd(R(1), R(0), 1, guard=P(2), guard_negate=True)
        assert inst.guard == P(2) and inst.guard_negate

    def test_bad_operand_type_rejected(self):
        kb = KernelBuilder("t")
        with pytest.raises(TypeError):
            kb.iadd(R(1), R(0), object())
