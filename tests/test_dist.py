"""Tests for the distributed campaign layer (:mod:`repro.harness.dist`,
:mod:`repro.harness.distproto`): wire-protocol round-trips, byte-identity
of the distributed merge with the serial runner, coordinator crash and
cross-process resume, lease-expiry steals with duplicate-upload dedup,
gzip checkpoint back-compat, shared timeout-history flushes and the
campaign dry-run."""

import gzip
import json
import os
import threading
import time

import pytest

from repro.harness import store
from repro.harness.dist import (
    CampaignCoordinator,
    DistWorker,
    EXIT_COORDINATOR_LOST,
    EXIT_OK,
    EXIT_PROTOCOL,
    spawn_worker,
)
from repro.harness.dist_bench import run_dist_bench_cell
from repro.harness.distproto import (
    ProtocolError,
    cell_from_wire,
    cell_to_wire,
    check_version,
)
from repro.harness.runner import (
    CampaignCell,
    CampaignRunner,
    ExecutionPolicy,
    execute_cell,
    render_dry_run,
)


def _cells(n, work_ms=10.0, prefix="bench"):
    """Sleep-calibrated cells whose function is importable from the
    installed package — required for anything that crosses the wire
    (workers reconstruct cells by module + qualname)."""
    return [
        CampaignCell(
            key=f"{prefix}/{i:03d}",
            fn=run_dist_bench_cell,
            kwargs=dict(cell_id=f"cell-{i:03d}", work_ms=work_ms),
            group="dist-bench",
        )
        for i in range(n)
    ]


def _artifacts(out_dir):
    blobs = {}
    for name in ("tables.json", "counters.json"):
        with open(os.path.join(out_dir, name), "rb") as fh:
            blobs[name] = fh.read()
    return blobs


def _run_checkpoint(cell):
    """Execute one cell locally and return its checkpoint payload."""
    outcome = execute_cell(cell, ExecutionPolicy(timeout=None))
    assert outcome.ok
    return store.build_checkpoint(outcome)


# ---------------------------------------------------------------------------
# wire protocol
# ---------------------------------------------------------------------------

class TestWireProtocol:
    def test_cell_roundtrip(self):
        cell = _cells(1)[0]
        wire = cell_to_wire(cell)
        back = cell_from_wire(json.loads(json.dumps(wire)))
        assert back.key == cell.key
        assert back.fn is cell.fn
        assert back.kwargs == cell.kwargs
        assert back.group == cell.group
        assert back.config_hash() == cell.config_hash()

    def test_tampered_kwargs_rejected(self):
        """The declared config hash must match the reconstruction — a
        worker never silently runs a different computation."""
        wire = cell_to_wire(_cells(1)[0])
        wire["kwargs"]["work_ms"] = 9999.0
        with pytest.raises(ProtocolError, match="config hash"):
            cell_from_wire(wire)

    def test_unresolvable_function_rejected(self):
        wire = cell_to_wire(_cells(1)[0])
        wire["fn"] = {"module": "repro.no_such_module", "qualname": "f"}
        with pytest.raises(ProtocolError, match="resolve"):
            cell_from_wire(wire)

    def test_version_mismatch_rejected(self):
        with pytest.raises(ProtocolError, match="protocol"):
            check_version({"protocol": 999}, "coordinator")

    def test_result_hash_ignores_duration(self):
        """Lease-steal duplicates legitimately differ in wall-clock;
        the dedup hash covers status and table only."""
        ckpt = _run_checkpoint(_cells(1)[0])
        slower = dict(ckpt, duration_s=ckpt["duration_s"] + 17.0)
        assert store.result_hash(ckpt) == store.result_hash(slower)
        other = json.loads(json.dumps(ckpt))
        other["table"]["rows"]["cell-000"] = [123.0]
        assert store.result_hash(ckpt) != store.result_hash(other)


# ---------------------------------------------------------------------------
# byte-identity with the serial runner
# ---------------------------------------------------------------------------

class TestDistributedMerge:
    def test_distributed_matches_serial_bytes(self, tmp_path):
        """An in-process worker draining a loopback coordinator must
        produce tables.json and counters.json byte-identical to the
        serial runner's for the same matrix."""
        cells = _cells(6)
        serial_dir = str(tmp_path / "serial")
        dist_dir = str(tmp_path / "dist")
        serial = CampaignRunner(
            cells, out_dir=serial_dir, workers=1, echo=lambda m: None,
        ).run()
        assert serial.ok

        coord = CampaignCoordinator(
            cells, out_dir=dist_dir, echo=lambda m: None,
        )
        url = coord.start()
        worker = DistWorker(url, workers=2, name="t-w0",
                            echo=lambda m: None)
        code = worker.run()
        assert code == EXIT_OK
        assert coord.wait(10.0)
        coord.stop()
        result = coord.collect()
        assert result.ok
        assert result.completed == [c.key for c in cells]
        assert _artifacts(serial_dir) == _artifacts(dist_dir)
        # run-shape counters live in ops_counters.json, not in the
        # deterministic dump
        ops = store.read_json(result.ops_counters_path)
        assert ops["counters"]["harness.dist.uploads"] == len(cells)
        assert ops["counters"]["harness.dist.workers"] == 1

    def test_worker_exits_2_on_protocol_mismatch(self, tmp_path):
        coord = CampaignCoordinator(
            _cells(1), out_dir=str(tmp_path / "c"), echo=lambda m: None,
        )
        url = coord.start()
        try:
            coord.describe = lambda: {"protocol": 999}
            worker = DistWorker(url, name="t-mismatch",
                                echo=lambda m: None)
            assert worker.run() == EXIT_PROTOCOL
        finally:
            coord.stop()


# ---------------------------------------------------------------------------
# coordinator crash and resume across processes
# ---------------------------------------------------------------------------

class TestCoordinatorCrash:
    def test_workers_exit_cleanly_and_resume_is_bit_identical(self,
                                                              tmp_path):
        """Kill the coordinator mid-campaign: subprocess workers notice
        the lost heartbeat and exit with code 3; a resumed coordinator
        restores the uploaded checkpoints and the completed campaign is
        byte-identical to a serial run of the same matrix."""
        cells = _cells(6, work_ms=300.0)
        serial_dir = str(tmp_path / "serial")
        dist_dir = str(tmp_path / "dist")
        serial = CampaignRunner(
            cells, out_dir=serial_dir, workers=1, echo=lambda m: None,
        ).run()
        assert serial.ok

        coord = CampaignCoordinator(
            cells, out_dir=dist_dir, lease_seconds=1.0,
            echo=lambda m: None,
        )
        url = coord.start()
        procs = [spawn_worker(url, name=f"t-crash-w{i}")
                 for i in range(2)]
        try:
            deadline = time.monotonic() + 60.0
            while coord.status()["done"] < 2:
                assert time.monotonic() < deadline, "no uploads arrived"
                time.sleep(0.05)
        except BaseException:
            for proc in procs:
                proc.kill()
            raise
        done_before = coord.status()["done"]
        assert done_before < len(cells), (
            "matrix finished before the crash could be simulated; "
            "use slower cells"
        )
        coord.stop()  # the "crash": the endpoint vanishes mid-campaign
        for proc in procs:
            proc.wait(timeout=60.0)
        assert [p.returncode for p in procs] == [
            EXIT_COORDINATOR_LOST, EXIT_COORDINATOR_LOST,
        ]

        resumed = CampaignCoordinator(
            cells, out_dir=dist_dir, resume=True, echo=lambda m: None,
        )
        url = resumed.start()
        assert resumed.status()["done"] >= done_before, (
            "resume must restore every checkpoint the crashed "
            "coordinator persisted"
        )
        procs = [spawn_worker(url, name=f"t-resume-w{i}")
                 for i in range(2)]
        try:
            assert resumed.wait(120.0)
            for proc in procs:
                proc.wait(timeout=60.0)
        finally:
            for proc in procs:
                if proc.poll() is None:
                    proc.kill()
                    proc.wait()
            resumed.stop()
        assert [p.returncode for p in procs] == [EXIT_OK, EXIT_OK]
        result = resumed.collect()
        assert result.ok
        assert _artifacts(serial_dir) == _artifacts(dist_dir)


# ---------------------------------------------------------------------------
# lease expiry, steals, duplicate uploads
# ---------------------------------------------------------------------------

class TestLeaseStealAndDedup:
    def _coordinator(self, tmp_path, lease_seconds=0.05):
        return CampaignCoordinator(
            _cells(1), out_dir=str(tmp_path / "steal"),
            lease_seconds=lease_seconds, echo=lambda m: None,
        )

    def test_expired_lease_is_stolen_and_duplicate_deduped(self,
                                                           tmp_path):
        coord = self._coordinator(tmp_path)
        first = coord.lease("w-slow")
        key = first["cell"]["key"]
        time.sleep(0.08)  # let w-slow's lease expire (no heartbeats)
        second = coord.lease("w-fast")
        assert second["cell"]["key"] == key
        ctr = coord.counters.to_dict()["counters"]
        assert ctr["harness.dist.steals"] == 1
        assert ctr["harness.dist.lease_expiries"] == 1

        ckpt = _run_checkpoint(coord.cells[0])
        status, body = coord.upload("w-fast", ckpt)
        assert (status, body["dedup"]) == (200, False)
        # the slow worker finishes anyway and re-uploads; durations
        # differ but the result hash matches -> deduplicated
        late = dict(ckpt, duration_s=ckpt["duration_s"] + 5.0)
        status, body = coord.upload("w-slow", late)
        assert (status, body["dedup"]) == (200, True)
        ctr = coord.counters.to_dict()["counters"]
        assert ctr["harness.dist.upload_dedup"] == 1
        assert ctr["harness.dist.uploads"] == 2
        assert coord.wait(0.0)

    def test_conflicting_duplicate_is_rejected_first_write_wins(
            self, tmp_path):
        coord = self._coordinator(tmp_path)
        coord.lease("w-a")
        ckpt = _run_checkpoint(coord.cells[0])
        assert coord.upload("w-a", ckpt)[0] == 200
        conflict = json.loads(json.dumps(ckpt))
        conflict["table"]["rows"]["cell-000"] = [999.0]
        status, body = coord.upload("w-b", conflict)
        assert status == 409
        ctr = coord.counters.to_dict()["counters"]
        assert ctr["harness.dist.upload_conflicts"] == 1
        # first write wins: the persisted checkpoint is the original
        kept = store.read_json(store.checkpoint_path(
            coord.out_dir, coord.cells[0].key,
            coord.cells[0].config_hash(),
        ))
        assert kept["table"]["rows"]["cell-000"] != [999.0]

    def test_invalid_upload_rejected(self, tmp_path):
        coord = self._coordinator(tmp_path)
        assert coord.upload("w", {"nonsense": 1})[0] == 400
        assert coord.upload("w", {"key": "no/such/cell"})[0] == 400
        bad = _run_checkpoint(coord.cells[0])
        bad["config_hash"] = "0" * 16
        assert coord.upload("w", bad)[0] == 400
        ctr = coord.counters.to_dict()["counters"]
        assert ctr["harness.dist.upload_rejected"] == 3

    def test_heartbeat_extends_and_reports_held_keys(self, tmp_path):
        coord = self._coordinator(tmp_path, lease_seconds=0.2)
        lease = coord.lease("w-a")
        key = lease["cell"]["key"]
        for _ in range(3):
            time.sleep(0.1)
            beat = coord.heartbeat("w-a", [key])
            assert beat["keys"] == [key]  # heartbeats keep it alive
        time.sleep(0.25)  # stop heartbeating; lease expires
        assert coord.lease("w-b")["cell"]["key"] == key
        assert coord.heartbeat("w-a", [key])["keys"] == [], (
            "a stolen lease must vanish from the old worker's heartbeat"
        )


# ---------------------------------------------------------------------------
# clean shutdown at the natural end of a campaign
# ---------------------------------------------------------------------------

class TestCleanShutdown:
    """The coordinator must not vanish before its workers learn the
    matrix is done — a worker whose next poll hits a closed socket
    would misreport the natural end of the campaign as a coordinator
    crash (exit 3 instead of 0)."""

    def test_linger_waits_for_unacked_workers(self, tmp_path):
        coord = CampaignCoordinator(
            _cells(1), out_dir=str(tmp_path / "linger"),
            echo=lambda m: None,
        )
        lease = coord.lease("w-a")
        assert coord.lease("w-b").get("wait")  # joins, gets no cell
        assert coord.upload("w-a", _run_checkpoint(coord.cells[0]))[0] == 200
        assert coord.lease("w-a").get("done")
        # w-b has not been told yet: linger must hold until the cap
        start = time.monotonic()
        coord.linger(timeout=0.3)
        assert time.monotonic() - start >= 0.25
        # once w-b hears "done" (here via heartbeat), linger is instant
        assert coord.heartbeat("w-b", [])["done"] is True
        start = time.monotonic()
        coord.linger(timeout=5.0)
        assert time.monotonic() - start < 1.0

    def test_fleet_workers_exit_zero_when_coordinator_run_completes(
            self, tmp_path):
        """End-to-end CLI shape: coordinator.run() serves, two worker
        subprocesses drain the matrix, and both must exit 0 — the
        coordinator lingers until they ack instead of closing the
        socket on the last upload."""
        coord = CampaignCoordinator(
            _cells(4, work_ms=50.0), out_dir=str(tmp_path / "fleet"),
            echo=lambda m: None,
        )
        url = coord.start()
        procs = [spawn_worker(url, name=f"z-w{i}") for i in range(2)]
        try:
            assert coord.wait(60.0)
            coord.linger()
            for proc in procs:
                assert proc.wait(timeout=30.0) == EXIT_OK
        finally:
            for proc in procs:
                if proc.poll() is None:
                    proc.kill()
            coord.stop()
        assert coord.collect().ok

    def test_lost_coordinator_after_done_is_a_clean_exit(self):
        worker = DistWorker("http://127.0.0.1:1", echo=lambda m: None)
        worker._finish()
        worker._coordinator_lost("socket closed after the done ack")
        assert worker._lost is False
        assert worker._stop.is_set()


# ---------------------------------------------------------------------------
# gzip checkpoints, shared timeout history, dry-run
# ---------------------------------------------------------------------------

class TestGzipCheckpoints:
    def test_write_compressed_read_sniffed(self, tmp_path):
        path = str(tmp_path / "blob.json")
        payload = {"a": [1, 2, 3], "b": "x"}
        store.write_json(path, payload, compress=True)
        with open(path, "rb") as fh:
            assert fh.read(2) == store.GZIP_MAGIC
        assert store.read_json(path) == payload

    def test_compressed_bytes_are_deterministic(self, tmp_path):
        a, b = str(tmp_path / "a.json"), str(tmp_path / "b.json")
        store.write_json(a, {"k": 1}, compress=True)
        time.sleep(0.02)  # a gzip timestamp would differ across these
        store.write_json(b, {"k": 1}, compress=True)
        assert open(a, "rb").read() == open(b, "rb").read()

    def test_plain_json_still_readable(self, tmp_path):
        path = str(tmp_path / "legacy.json")
        with open(path, "w") as fh:
            json.dump({"old": True}, fh)
        assert store.read_json(path) == {"old": True}

    def test_resume_restores_legacy_uncompressed_checkpoint(
            self, tmp_path):
        """Campaign directories written before checkpoint compression
        must keep resuming."""
        cells = _cells(1)
        out = str(tmp_path / "campaign")
        first = CampaignRunner(
            cells, out_dir=out, workers=1, echo=lambda m: None,
        ).run()
        assert first.ok
        ckpt_path = store.checkpoint_path(
            out, cells[0].key, cells[0].config_hash()
        )
        data = store.read_json(ckpt_path)
        with open(ckpt_path, "w") as fh:  # rewrite as the old format
            json.dump(data, fh)
        with open(ckpt_path, "rb") as fh:
            assert fh.read(2) != store.GZIP_MAGIC
        resumed = CampaignRunner(
            cells, out_dir=out, workers=1, resume=True,
            echo=lambda m: None,
        ).run()
        assert resumed.ok
        assert resumed.skipped == [cells[0].key]


class TestSharedTimeoutHistory:
    def test_concurrent_flushes_union(self, tmp_path):
        """Workers sharing a campaign directory flush their timeout
        histories concurrently; the atomic read-modify-write must keep
        every entry."""
        out = str(tmp_path)
        cells = _cells(8)
        errors = []

        def flush_one(cell, duration):
            history = store.TimeoutHistory()
            history.record(cell, duration)
            try:
                history.flush(out)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=flush_one, args=(cell, 0.1 * (i + 1)))
            for i, cell in enumerate(cells)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        merged = store.TimeoutHistory.load(out)
        assert set(merged) == {cell.key for cell in cells}

    def test_stale_lock_is_broken(self, tmp_path):
        out = str(tmp_path)
        lock = os.path.join(out, "timeout_history.json.lock")
        with open(lock, "w"):
            pass
        stale = time.time() - 10 * store.HISTORY_LOCK_STALE_S
        os.utime(lock, (stale, stale))
        history = store.TimeoutHistory()
        history.record(_cells(1)[0], 0.5)
        history.flush(out)  # must not deadlock on the dead lock file
        assert store.TimeoutHistory.load(out)


class TestDryRun:
    def test_estimates_from_history(self, tmp_path):
        cells = _cells(2)
        out = str(tmp_path / "campaign")
        fresh = render_dry_run(cells, out)
        assert "[dry-run] 2 cell(s), 0 with history estimates" in fresh
        assert fresh.count("est=?") == 2
        result = CampaignRunner(
            cells, out_dir=out, workers=1, echo=lambda m: None,
        ).run()
        assert result.ok
        seeded = render_dry_run(cells, out)
        assert "2 with history estimates" in seeded
        assert "est=?" not in seeded
        for cell in cells:
            assert cell.key in seeded
