"""Public-API hygiene: every public package exports what it claims, every
public item has a docstring, the examples' imports resolve, and the
documentation's relative links point at real files and headings."""

import importlib
import inspect
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

PACKAGES = [
    "repro",
    "repro.isa",
    "repro.functional",
    "repro.vm",
    "repro.mem",
    "repro.timing",
    "repro.core",
    "repro.system",
    "repro.opt",
    "repro.runtime",
    "repro.workloads",
    "repro.harness",
    "repro.telemetry",
    "repro.chaos",
    "repro.batch",
]

#: telemetry/chaos modules whose *entire* public surface (classes,
#: functions, public methods) must be documented — the observability and
#: robustness stories are documented APIs, not internal details
#: (docs/OBSERVABILITY.md, docs/ROBUSTNESS.md).
TELEMETRY_MODULES = [
    "repro.telemetry",
    "repro.telemetry.counters",
    "repro.telemetry.compare",
    "repro.telemetry.events",
    "repro.chaos",
    "repro.chaos.engine",
    "repro.chaos.sanitizer",
    "repro.chaos.watchdog",
    # The CUDA-like runtime (streams included) is a documented public API:
    # docs/CONCURRENCY.md leans on these docstrings.
    "repro.runtime",
    "repro.runtime.device",
]

#: instrumentation hook points: the methods that emit telemetry or host a
#: chaos injection/sanitizer check must say so
HOOK_POINTS = [
    ("repro.timing.sm", "SmPipeline", "try_issue"),
    ("repro.timing.sm", "SmPipeline", "squash_faulted"),
    ("repro.timing.sm", "SmPipeline", "launch_block"),
    ("repro.mem.tlb", "Mmu", "attach_telemetry"),
    ("repro.mem.tlb", "Mmu", "attach_chaos"),
    ("repro.mem.tlb", "Mmu", "translate"),
    ("repro.mem.tlb", "Mmu", "shootdown"),
    ("repro.system.faults", "FaultController", "on_fault"),
    ("repro.system.gpu", "GpuSimulator", "run"),
    ("repro.timing.engine", "EventQueue", "attach_sanitizer"),
]


class TestExports:
    @pytest.mark.parametrize("name", PACKAGES)
    def test_package_imports(self, name):
        module = importlib.import_module(name)
        assert module.__doc__, f"{name} lacks a module docstring"

    @pytest.mark.parametrize("name", PACKAGES)
    def test_all_entries_resolve(self, name):
        module = importlib.import_module(name)
        for symbol in getattr(module, "__all__", []):
            assert hasattr(module, symbol), f"{name}.{symbol} missing"

    @pytest.mark.parametrize("name", PACKAGES)
    def test_public_callables_documented(self, name):
        module = importlib.import_module(name)
        for symbol in getattr(module, "__all__", []):
            obj = getattr(module, symbol)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                assert inspect.getdoc(obj), f"{name}.{symbol} undocumented"


class TestTelemetryDocstrings:
    @pytest.mark.parametrize("name", TELEMETRY_MODULES)
    def test_full_public_surface_documented(self, name):
        module = importlib.import_module(name)
        assert module.__doc__, f"{name} lacks a module docstring"
        undocumented = []
        for attr, obj in vars(module).items():
            if attr.startswith("_"):
                continue
            if getattr(obj, "__module__", None) != name:
                continue  # re-export; documented where it is defined
            if inspect.isclass(obj):
                if not inspect.getdoc(obj):
                    undocumented.append(f"{name}.{attr}")
                for mname, meth in vars(obj).items():
                    if mname.startswith("_") and mname != "__init__":
                        continue
                    if inspect.isfunction(meth) and not inspect.getdoc(meth):
                        undocumented.append(f"{name}.{attr}.{mname}")
            elif inspect.isfunction(obj):
                if not inspect.getdoc(obj):
                    undocumented.append(f"{name}.{attr}")
        assert not undocumented, f"undocumented: {undocumented}"

    @pytest.mark.parametrize("module,cls,method", HOOK_POINTS)
    def test_instrumented_hook_points_documented(self, module, cls, method):
        obj = getattr(importlib.import_module(module), cls)
        fn = getattr(obj, method)
        assert inspect.getdoc(fn), f"{module}.{cls}.{method} undocumented"


class TestExampleImports:
    @pytest.mark.parametrize(
        "path",
        [
            "examples/quickstart.py",
            "examples/scheme_comparison.py",
            "examples/block_switching.py",
            "examples/local_fault_handling.py",
            "examples/pipeline_diagrams.py",
            "examples/preemption_latency.py",
            "examples/multi_stream.py",
            "examples/run_all_experiments.py",
            "examples/telemetry_tour.py",
        ],
    )
    def test_example_compiles(self, path):
        import py_compile

        py_compile.compile(path, doraise=True)


class TestDocLinks:
    def test_all_relative_doc_links_resolve(self, capsys):
        sys.path.insert(0, str(REPO_ROOT / "tools"))
        try:
            check_doc_links = importlib.import_module("check_doc_links")
        finally:
            sys.path.pop(0)
        broken = check_doc_links.main([str(REPO_ROOT)])
        assert broken == 0, capsys.readouterr().out


class TestVersion:
    def test_version_string(self):
        import repro

        parts = repro.__version__.split(".")
        assert len(parts) == 3 and all(p.isdigit() for p in parts)
