"""Public-API hygiene: every public package exports what it claims, every
public item has a docstring, and the examples' imports resolve."""

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.isa",
    "repro.functional",
    "repro.vm",
    "repro.mem",
    "repro.timing",
    "repro.core",
    "repro.system",
    "repro.opt",
    "repro.runtime",
    "repro.workloads",
    "repro.harness",
]


class TestExports:
    @pytest.mark.parametrize("name", PACKAGES)
    def test_package_imports(self, name):
        module = importlib.import_module(name)
        assert module.__doc__, f"{name} lacks a module docstring"

    @pytest.mark.parametrize("name", PACKAGES)
    def test_all_entries_resolve(self, name):
        module = importlib.import_module(name)
        for symbol in getattr(module, "__all__", []):
            assert hasattr(module, symbol), f"{name}.{symbol} missing"

    @pytest.mark.parametrize("name", PACKAGES)
    def test_public_callables_documented(self, name):
        module = importlib.import_module(name)
        for symbol in getattr(module, "__all__", []):
            obj = getattr(module, symbol)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                assert inspect.getdoc(obj), f"{name}.{symbol} undocumented"


class TestExampleImports:
    @pytest.mark.parametrize(
        "path",
        [
            "examples/quickstart.py",
            "examples/scheme_comparison.py",
            "examples/block_switching.py",
            "examples/local_fault_handling.py",
            "examples/pipeline_diagrams.py",
            "examples/preemption_latency.py",
            "examples/run_all_experiments.py",
        ],
    )
    def test_example_compiles(self, path):
        import py_compile

        py_compile.compile(path, doraise=True)


class TestVersion:
    def test_version_string(self):
        import repro

        parts = repro.__version__.split(".")
        assert len(parts) == 3 and all(p.isdigit() for p in parts)
