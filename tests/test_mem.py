"""Memory-hierarchy timing tests: caches, MSHRs, DRAM, TLBs, walkers,
coalescer and the composed subsystem."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem import Cache, Dram, MemorySubsystem, Mmu, Tlb, WalkerPool, coalesce
from repro.system import GPUConfig
from repro.vm import CACHE_LINE_SIZE


def _next_level_const(latency=100):
    def access(start, line, is_store):
        return start + latency

    return access


class TestCache:
    def make(self, **kw):
        defaults = dict(
            name="t", size_bytes=1024, assoc=2, line_size=128, latency=10,
            num_mshrs=4,
        )
        defaults.update(kw)
        return Cache(**defaults)

    def test_miss_then_hit(self):
        cache = self.make()
        nxt = _next_level_const(100)
        t1 = cache.access(0, 0.0, False, nxt)
        assert t1 == 110  # latency + next level
        t2 = cache.access(0, t1 + 1, False, nxt)
        assert t2 == t1 + 1 + 10  # hit
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_secondary_miss_merges(self):
        cache = self.make()
        nxt = _next_level_const(100)
        t1 = cache.access(0, 0.0, False, nxt)
        t2 = cache.access(0, 1.0, False, nxt)
        assert t2 == t1  # merged onto the outstanding fill
        assert cache.stats.secondary_misses == 1
        assert cache.stats.misses == 1

    def test_lru_eviction(self):
        # 1024B/128B/2-way = 4 sets; lines 0, 4, 8 map to set 0
        cache = self.make()
        nxt = _next_level_const(0)
        cache.access(0, 0.0, False, nxt)
        cache.access(4, 100.0, False, nxt)
        cache.access(0, 200.0, False, nxt)  # touch 0 -> 4 becomes LRU
        cache.access(8, 300.0, False, nxt)  # evicts 4
        cache.access(0, 400.0, False, nxt)
        assert cache.probe(0)
        assert not cache.probe(4)
        assert cache.stats.evictions == 1

    def test_mshr_backpressure(self):
        cache = self.make(num_mshrs=2)
        nxt = _next_level_const(100)
        t1 = cache.access(0, 0.0, False, nxt)
        t2 = cache.access(4, 0.0, False, nxt)
        t3 = cache.access(8, 0.0, False, nxt)  # waits for an MSHR
        assert t3 > max(t1, t2)
        assert cache.stats.mshr_stalls == 1

    def test_mshr_wait_charges_unloaded_latency(self):
        """MSHR-stalled requests must not book downstream resources at
        future timestamps (the causality fix)."""
        cache = self.make(num_mshrs=1, next_level_unloaded=100)
        calls = []

        def nxt(start, line, is_store):
            calls.append(start)
            return start + 100

        cache.access(0, 0.0, False, nxt)
        t2 = cache.access(4, 0.0, False, nxt)
        assert len(calls) == 1  # second (stalled) request bypassed next level
        assert t2 == pytest.approx(110 + 10 + 100)

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            Cache("bad", size_bytes=1000, assoc=3, line_size=128,
                  latency=1, num_mshrs=1)

    def test_flush(self):
        cache = self.make()
        cache.access(0, 0.0, False, _next_level_const(0))
        cache.flush()
        assert not cache.probe(0)

    @given(st.lists(st.integers(0, 16), min_size=1, max_size=60))
    @settings(max_examples=50)
    def test_lru_contents_match_reference(self, lines):
        """Cache tag state must equal a reference LRU model."""
        cache = self.make(num_mshrs=64)
        nxt = _next_level_const(0)
        reference = {s: [] for s in range(cache.num_sets)}
        t = 0.0
        for line in lines:
            t += 1000.0  # far apart: fills always complete
            cache.access(line, t, False, nxt)
            ref_set = reference[line % cache.num_sets]
            if line in ref_set:
                ref_set.remove(line)
            elif len(ref_set) >= cache.assoc:
                ref_set.pop(0)
            ref_set.append(line)
        # present lines agree (pending fills count as present-after-access)
        for line in set(lines):
            t += 1000.0
            before_hits = cache.stats.hits
            cache.access(line, t, False, nxt)
            was_hit = cache.stats.hits == before_hits + 1
            assert was_hit == (line in reference[line % cache.num_sets])
            ref_set = reference[line % cache.num_sets]
            if line in ref_set:
                ref_set.remove(line)
            elif len(ref_set) >= cache.assoc:
                ref_set.pop(0)
            ref_set.append(line)


class TestDram:
    def test_latency_plus_bandwidth(self):
        dram = Dram(latency=200, bandwidth_bytes_per_cycle=256, line_size=128)
        t = dram.access(0.0, 0, False)
        assert t == pytest.approx(200.5)

    def test_bandwidth_serializes(self):
        dram = Dram(latency=0, bandwidth_bytes_per_cycle=128, line_size=128)
        t1 = dram.access(0.0, 0, False)
        t2 = dram.access(0.0, 1, False)
        assert t1 == 1.0 and t2 == 2.0
        assert dram.stats.busy_cycles == 2.0

    def test_reserve_bandwidth_bulk(self):
        dram = Dram(latency=10, bandwidth_bytes_per_cycle=256, line_size=128)
        t = dram.reserve_bandwidth(0.0, 256 * 100)
        assert t == pytest.approx(110.0)


class TestTlb:
    def test_hit_after_insert(self):
        tlb = Tlb("t", entries=8, assoc=4)
        assert tlb.lookup(3) is None
        tlb.insert(3, 30)
        assert tlb.lookup(3) == 30

    def test_lru_within_set(self):
        tlb = Tlb("t", entries=4, assoc=2)  # 2 sets
        tlb.insert(0, 1)
        tlb.insert(2, 2)  # same set as 0
        tlb.lookup(0)  # refresh 0
        tlb.insert(4, 3)  # evicts 2
        assert tlb.lookup(0) == 1
        assert tlb.lookup(2) is None

    def test_invalidate(self):
        tlb = Tlb("t", entries=8, assoc=4)
        tlb.insert(1, 10)
        tlb.invalidate(1)
        assert tlb.lookup(1) is None


class TestWalkerPool:
    def test_walk_latency(self):
        pool = WalkerPool(num_walkers=2, walk_latency=500)
        assert pool.walk(0.0) == 500.0

    def test_pool_exhaustion_queues(self):
        pool = WalkerPool(num_walkers=2, walk_latency=500)
        pool.walk(0.0)
        pool.walk(0.0)
        t3 = pool.walk(0.0)  # waits for a walker
        assert t3 == 1000.0
        assert pool.stall_cycles == 500.0


class TestMmu:
    def make(self, mapping=None):
        mapping = mapping if mapping is not None else {}

        def translate_fn(vpn, time):
            return mapping.get(vpn)

        return Mmu(
            num_sms=2, l1_entries=4, l1_assoc=4, l2_entries=16, l2_assoc=4,
            l2_latency=70, num_walkers=4, walk_latency=500,
            translate_fn=translate_fn,
        ), mapping

    def test_cold_walk_then_warm_hits(self):
        mmu, mapping = self.make({5: 50})
        r1 = mmu.translate(0, 5, 0.0)
        assert not r1.faulted
        assert r1.done_time == pytest.approx(570.0)  # l2 latency + walk
        r2 = mmu.translate(0, 5, r1.done_time + 1)
        assert r2.done_time == r1.done_time + 1  # L1 TLB hit

    def test_pending_walk_merging(self):
        mmu, _ = self.make({5: 50})
        r1 = mmu.translate(0, 5, 0.0)
        r2 = mmu.translate(1, 5, 1.0)  # other SM, walk in flight
        assert r2.done_time == r1.done_time
        assert mmu.l2_tlb.stats.merged_walks == 1
        assert mmu.walkers.walks == 1

    def test_entry_invisible_until_walk_completes(self):
        mmu, _ = self.make({5: 50})
        r1 = mmu.translate(0, 5, 0.0)
        r2 = mmu.translate(0, 5, 10.0)  # same SM, before walk done
        assert r2.done_time == r1.done_time  # merged, not an instant hit

    def test_fault_detected_at_walk_completion(self):
        mmu, _ = self.make({})
        r = mmu.translate(0, 9, 0.0)
        assert r.faulted
        assert r.done_time == pytest.approx(570.0)
        assert mmu.fault_detections == 1

    def test_faulted_page_not_cached_in_tlb(self):
        mmu, mapping = self.make({})
        r1 = mmu.translate(0, 9, 0.0)
        mapping[9] = 90  # fault resolved
        r2 = mmu.translate(0, 9, r1.done_time + 1)
        assert not r2.faulted  # re-walks and finds the new mapping


class TestCoalescer:
    def test_fully_coalesced_warp(self):
        addrs = [4 * i for i in range(32)]
        result = coalesce(addrs)
        assert result.num_requests == 1
        assert len(result.vpns) == 1

    def test_width8_spans_two_lines(self):
        addrs = [8 * i for i in range(32)]
        assert coalesce(addrs).num_requests == 2

    def test_fully_scattered(self):
        addrs = [CACHE_LINE_SIZE * 7 * i for i in range(32)]
        assert coalesce(addrs).num_requests == 32

    def test_preserves_first_touch_order(self):
        result = coalesce([300, 10, 600])
        assert result.lines == (2, 0, 4)

    @given(st.lists(st.integers(0, 2**30), min_size=1, max_size=32))
    @settings(max_examples=100)
    def test_bounds(self, addrs):
        result = coalesce(addrs)
        assert 1 <= result.num_requests <= len(addrs)
        assert len(result.vpns) <= result.num_requests
        assert set(result.lines) == {a // CACHE_LINE_SIZE for a in addrs}


class TestMemorySubsystem:
    def make(self, mapping=None):
        mapping = mapping if mapping is not None else {}
        config = GPUConfig(num_sms=2)
        return (
            MemorySubsystem(config, translate_fn=lambda v, t: mapping.get(v)),
            mapping,
            config,
        )

    def test_translated_access_completes(self):
        memsys, mapping, config = self.make({0: 0})
        result = memsys.warp_access(0, [4 * i for i in range(32)], False, 0.0)
        assert not result.faulted
        assert result.completion > result.translation_done

    def test_unmapped_page_faults(self):
        memsys, _, _ = self.make({})
        result = memsys.warp_access(0, [0], False, 0.0)
        assert result.faulted
        assert result.faults[0].vpn == 0

    def test_partial_fault_parks_only_faulted_requests(self):
        memsys, _, _ = self.make({0: 0})  # page 0 mapped, page 1 not
        addrs = [0, 4096]
        result = memsys.warp_access(0, addrs, False, 0.0)
        assert len(result.faults) == 1
        assert result.faults[0].vpn == 1

    def test_store_completes_at_write_buffer(self):
        memsys, _, _ = self.make({0: 0})
        load = memsys.warp_access(0, [0], False, 0.0)
        memsys.flush()
        store = memsys.warp_access(0, [0], True, 0.0)
        assert store.completion < load.completion

    def test_ldst_pipe_serializes_requests(self):
        memsys, mapping, _ = self.make({i: i for i in range(64)})
        scattered = [128 * 7 * i for i in range(32)]  # 32 requests
        r1 = memsys.warp_access(0, scattered, False, 0.0)
        # last TLB check can be no earlier than the 32-deep request stream
        assert r1.translation_done >= 32.0

    def test_replay_after_fault_unloaded(self):
        memsys, _, config = self.make({})
        replay = memsys.replay_after_fault(0, [0], resolved_time=10_000.0)
        assert replay.translation_done > 10_000.0
        assert replay.completion > replay.translation_done
        assert not replay.faulted
        # shared accumulators untouched (causality)
        assert memsys.dram._next_free == 0.0
        assert memsys._ldst_free[0] == 0.0
