"""Crash-isolated harness tests: child-process execution, timeouts,
structured failures, seed-bumping retries, the spawn fallback, and CLI
exit codes."""

import multiprocessing
import time

import pytest

from repro.chaos import HangDiagnostic, SimulationHang
from repro.harness import ExperimentFailure, run_experiment_isolated
from repro.harness.results import ExperimentTable


def _table(name="ok", value=1.0):
    table = ExperimentTable(
        name=name, description="test table", columns=["v"], show_geomean=False
    )
    table.add_row("row", [value])
    return table


def _ok_experiment(**kw):
    return _table()


def _crashing_experiment(**kw):
    raise RuntimeError("kaboom")


def _sleeping_experiment(**kw):
    time.sleep(60)


def _hang_diag():
    return HangDiagnostic(
        cycle=100.0, cycle_budget=50.0, blocks_remaining=3, committed=7
    )


def _hang_unless_reseeded(seed=0, **kw):
    if seed == 0:
        raise SimulationHang(_hang_diag())
    return _table(value=float(seed))


def _always_hanging(seed=0, **kw):
    raise SimulationHang(_hang_diag())


class TestRunIsolated:
    def test_result_crosses_process_boundary(self):
        result = run_experiment_isolated("ok", _ok_experiment)
        assert isinstance(result, ExperimentTable)
        assert result.rows == {"row": [1.0]}

    def test_crash_becomes_structured_failure(self):
        outcome = run_experiment_isolated("boom", _crashing_experiment)
        assert isinstance(outcome, ExperimentFailure)
        assert outcome.kind == "RuntimeError"
        assert outcome.message == "kaboom"
        assert "kaboom" in outcome.traceback_text
        assert outcome.attempts == 1
        assert "FAILED" in outcome.render()

    def test_timeout_terminates_child(self):
        start = time.time()
        outcome = run_experiment_isolated(
            "slow", _sleeping_experiment, timeout=0.5
        )
        assert time.time() - start < 10
        assert isinstance(outcome, ExperimentFailure)
        assert outcome.kind == "Timeout"

    def test_hang_retried_with_fresh_seed(self):
        result = run_experiment_isolated(
            "hangs-once",
            _hang_unless_reseeded,
            kwargs={"seed": 0},
            retries=2,
            reseed=lambda attempt, kw: {**kw, "seed": kw["seed"] + 17},
        )
        assert isinstance(result, ExperimentTable)
        assert result.rows == {"row": [17.0]}

    def test_retries_bounded(self):
        calls = []
        outcome = run_experiment_isolated(
            "hangs-always",
            _always_hanging,
            kwargs={"seed": 0},
            retries=2,
            reseed=lambda attempt, kw: (
                calls.append(attempt) or {**kw, "seed": attempt}
            ),
        )
        assert isinstance(outcome, ExperimentFailure)
        assert outcome.kind == "SimulationHang"
        assert outcome.attempts == 3  # initial + 2 retries
        assert calls == [1, 2]

    def test_hang_not_retried_without_reseed(self):
        outcome = run_experiment_isolated(
            "hangs", _always_hanging, retries=5
        )
        assert isinstance(outcome, ExperimentFailure)
        assert outcome.attempts == 1

    def test_other_errors_not_retried(self):
        outcome = run_experiment_isolated(
            "boom",
            _crashing_experiment,
            retries=5,
            reseed=lambda attempt, kw: kw,
        )
        assert isinstance(outcome, ExperimentFailure)
        assert outcome.attempts == 1


class TestSpawnFallback:
    """Without ``fork`` the harness must fall back to ``spawn``, keeping
    timeouts enforceable (the old in-process fallback silently lost
    them)."""

    @pytest.fixture
    def no_fork(self, monkeypatch):
        import repro.harness.isolation as iso

        real = multiprocessing.get_context

        def probe(method=None):
            if method == "fork":
                raise ValueError("fork unavailable (mocked platform)")
            return real(method)

        monkeypatch.setattr(iso.multiprocessing, "get_context", probe)

    def test_falls_back_to_spawn(self, no_fork):
        from repro.harness.isolation import (
            _exec_context,
            process_isolation_available,
        )

        ctx = _exec_context()
        assert ctx is not None
        assert ctx.get_start_method() == "spawn"
        assert process_isolation_available()

    def test_result_crosses_spawn_boundary(self, no_fork):
        result = run_experiment_isolated("ok", _ok_experiment)
        assert isinstance(result, ExperimentTable)
        assert result.rows == {"row": [1.0]}

    def test_timeout_still_enforced_under_spawn(self, no_fork):
        start = time.time()
        outcome = run_experiment_isolated(
            "slow", _sleeping_experiment, timeout=1.0
        )
        assert time.time() - start < 30
        assert isinstance(outcome, ExperimentFailure)
        assert outcome.kind == "Timeout"

    def test_no_start_method_at_all_runs_in_process(self, monkeypatch):
        import repro.harness.isolation as iso

        monkeypatch.setattr(
            iso.multiprocessing,
            "get_context",
            lambda method=None: (_ for _ in ()).throw(ValueError(method)),
        )
        assert not iso.process_isolation_available()
        outcome = run_experiment_isolated("boom", _crashing_experiment)
        assert isinstance(outcome, ExperimentFailure)
        assert outcome.kind == "RuntimeError"


class TestCliExitCodes:
    def test_single_experiment_success(self, capsys):
        from repro.harness.__main__ import main

        code = main(["fig10", "--workloads", "saxpy"])
        assert code == 0
        assert "fig10" in capsys.readouterr().out

    def test_failure_gives_nonzero_exit(self, monkeypatch, capsys):
        import repro.harness.__main__ as cli

        monkeypatch.setattr(
            cli, "ALL_EXPERIMENTS", {"boom": _crashing_experiment}
        )
        code = cli.main(["boom"])
        assert code == 1
        err = capsys.readouterr().err
        assert "RuntimeError" in err
        assert "1 experiment(s) failed" in err

    def test_all_keeps_going_past_failures(self, monkeypatch, capsys):
        import repro.harness.__main__ as cli

        monkeypatch.setattr(
            cli,
            "ALL_EXPERIMENTS",
            {"a-boom": _crashing_experiment, "b-ok": _ok_experiment,
             "c-boom": _crashing_experiment},
        )
        code = cli.main(["all"])
        assert code == 1
        captured = capsys.readouterr()
        # the healthy experiment between two failures still completed
        assert "test table" in captured.out
        assert "2 experiment(s) failed" in captured.err
        assert "(1 completed)" in captured.err

    def test_single_experiment_stops_by_default(self, monkeypatch, capsys):
        import repro.harness.__main__ as cli

        monkeypatch.setattr(
            cli,
            "ALL_EXPERIMENTS",
            {"a-boom": _crashing_experiment, "b-ok": _ok_experiment},
        )
        code = cli.main(["a-boom"])
        assert code == 1
        assert "test table" not in capsys.readouterr().out

    def test_keep_going_documented_in_help(self, capsys):
        from repro.harness.__main__ import main

        with pytest.raises(SystemExit) as exc_info:
            main(["--help"])
        assert exc_info.value.code == 0
        help_text = capsys.readouterr().out
        assert "--keep-going" in help_text
        assert "--timeout" in help_text
        assert "chaos" in help_text

    def test_timeout_flag_kills_wedged_experiment(self, monkeypatch, capsys):
        import repro.harness.__main__ as cli

        monkeypatch.setattr(
            cli, "ALL_EXPERIMENTS", {"wedge": _sleeping_experiment}
        )
        start = time.time()
        code = cli.main(["wedge", "--timeout", "0.5"])
        assert code == 1
        assert time.time() - start < 10
        assert "Timeout" in capsys.readouterr().err

    def test_chaos_subcommand_passes_on_clean_campaign(self, capsys):
        from repro.harness.__main__ import main

        code = main(
            ["chaos", "saxpy", "--seed", "5", "--schemes", "replay-queue",
             "--intensity", "10"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "state-match" in out

    def test_chaos_subcommand_help(self, capsys):
        from repro.harness.__main__ import main

        with pytest.raises(SystemExit) as exc_info:
            main(["chaos", "--help"])
        assert exc_info.value.code == 0
        help_text = capsys.readouterr().out
        assert "--seed" in help_text
        assert "--retries" in help_text
