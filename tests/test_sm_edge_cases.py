"""SM pipeline edge cases: exited warps vs barriers, log partition clamp,
trace exhaustion, empty SMs, abort on invalid access, demand determinism."""

import pytest

from repro.core import OperandLog, make_scheme
from repro.functional import Interpreter, Launch
from repro.isa import Imm, KernelBuilder, P, R, Special, SReg
from repro.system import GpuSimulator, InvalidAccessError
from repro.vm import AddressSpace, SegmentKind, SparseMemory


def build_and_trace(build, grid=2, block=64, segments=(), regs=32):
    kb = KernelBuilder("edge", regs_per_thread=regs)
    build(kb)
    kb.exit()
    kernel = kb.build()

    def make_aspace():
        asp = AddressSpace()
        for name, size, kind in segments:
            asp.add_segment(name, size, kind)
        return asp

    asp = make_aspace()
    params = [asp.segment(name).base for name, _, _ in segments]
    trace = Interpreter(memory=SparseMemory()).run(
        Launch(kernel, grid, block, params=params)
    )
    return kernel, trace, make_aspace


class TestBarrierWithExitedWarps:
    def test_partial_exit_before_barrier(self):
        """Warp 0's lanes exit before the barrier; warp 1 must not hang."""

        def build(kb):
            kb.mov(R(0), SReg(Special.TID))
            kb.isetp(P(0), "lt", R(0), Imm(32))  # whole warp 0
            kb.exit(guard=P(0))
            kb.bar()
            kb.imad(R(1), R(0), Imm(4), kb.param(0))
            kb.st_global(R(1), Imm(1.0))

        kernel, trace, make_aspace = build_and_trace(
            build, segments=[("out", 4096, SegmentKind.OUTPUT)]
        )
        sim = GpuSimulator(kernel, trace, make_aspace(),
                           scheme=make_scheme("baseline"))
        res = sim.run()
        assert sum(s.blocks_completed for s in res.sm_stats) == 2


class TestOperandLogPartition:
    def test_partition_clamped_to_one_store_entry(self):
        """Even a tiny log guarantees each block one memory instruction
        (paper Section 5.2: the 8KB minimum covers 16 blocks)."""

        def build(kb):
            kb.global_thread_id(R(0))
            kb.imad(R(1), R(0), Imm(4), kb.param(0))
            kb.st_global(R(1), Imm(2.0))  # store needs 512B of log

        kernel, trace, make_aspace = build_and_trace(
            build, segments=[("out", 1 << 16, SegmentKind.OUTPUT)]
        )
        sim = GpuSimulator(kernel, trace, make_aspace(), scheme=OperandLog(1))
        res = sim.run()  # must not deadlock on log space
        assert sum(s.blocks_completed for s in res.sm_stats) == 2
        for sm in sim.sms:
            assert sm._log_partition >= 512


class TestInvalidAccess:
    def test_out_of_segment_access_aborts_kernel(self):
        def build(kb):
            kb.mov(R(1), Imm(1 << 35))  # far outside every segment
            kb.ld_global(R(2), R(1))
            kb.global_thread_id(R(3))
            kb.imad(R(4), R(3), Imm(4), kb.param(0))
            kb.st_global(R(4), R(2))

        kernel, trace, make_aspace = build_and_trace(
            build, segments=[("out", 4096, SegmentKind.OUTPUT)]
        )
        sim = GpuSimulator(
            kernel, trace, make_aspace(),
            scheme=make_scheme("replay-queue"), paging="demand",
        )
        with pytest.raises(InvalidAccessError):
            sim.run()


class TestDemandDeterminism:
    def test_same_cycles_across_runs(self):
        def build(kb):
            kb.global_thread_id(R(0))
            kb.imad(R(1), R(0), Imm(4), kb.param(0))
            kb.ld_global(R(2), R(1))
            kb.imad(R(3), R(0), Imm(4), kb.param(1))
            kb.st_global(R(3), R(2))

        kernel, trace, make_aspace = build_and_trace(
            build,
            grid=8,
            segments=[
                ("in", 1 << 18, SegmentKind.INPUT),
                ("out", 1 << 18, SegmentKind.OUTPUT),
            ],
        )

        def run():
            sim = GpuSimulator(
                kernel, trace, make_aspace(),
                scheme=make_scheme("replay-queue"), paging="demand",
            )
            return sim.run().cycles

        assert run() == run()


class TestSmBookkeeping:
    def test_multi_kernel_style_reuse_of_trace(self):
        """The same trace can be simulated repeatedly (fresh page state)."""

        def build(kb):
            kb.global_thread_id(R(0))
            kb.imad(R(1), R(0), Imm(4), kb.param(0))
            kb.st_global(R(1), Imm(1.0))

        kernel, trace, make_aspace = build_and_trace(
            build, segments=[("out", 1 << 16, SegmentKind.OUTPUT)]
        )
        results = set()
        for _ in range(3):
            sim = GpuSimulator(kernel, trace, make_aspace(),
                               scheme=make_scheme("baseline"))
            results.add(sim.run().cycles)
        assert len(results) == 1

    def test_more_blocks_than_slots_round_robin(self):
        def build(kb):
            kb.global_thread_id(R(0))
            kb.imad(R(1), R(0), Imm(4), kb.param(0))
            kb.st_global(R(1), Imm(1.0))

        kernel, trace, make_aspace = build_and_trace(
            build, grid=64, block=32,
            segments=[("out", 1 << 16, SegmentKind.OUTPUT)]
        )
        sim = GpuSimulator(kernel, trace, make_aspace(),
                           scheme=make_scheme("baseline"))
        res = sim.run()
        assert sum(s.blocks_completed for s in res.sm_stats) == 64
        launched = sum(s.blocks_launched for s in res.sm_stats)
        assert launched == 64
