"""Configuration tests: Table 1 defaults, derived quantities, scaling."""

import pytest

from repro.isa import KernelBuilder
from repro.system import (
    DEFAULT_CONFIG,
    INTERCONNECTS,
    NVLINK,
    PCIE,
    US,
    GPUConfig,
    ThreadBlockScheduler,
)
from repro.functional.trace import KernelTrace, BlockTrace


class TestTable1Defaults:
    def test_paper_values(self):
        cfg = GPUConfig()
        assert cfg.frequency_ghz == 1.0
        assert cfg.max_tbs_per_sm == 16
        assert cfg.max_warps_per_sm == 64
        assert cfg.register_file_bytes == 256 * 1024
        assert cfg.shared_mem_bytes == 32 * 1024
        assert cfg.issue_width == 2
        assert (cfg.num_math_units, cfg.num_sfu_units) == (2, 1)
        assert cfg.l1_size == 32 * 1024 and cfg.l1_assoc == 4
        assert cfg.line_size == 128
        assert cfg.l1_mshrs == 32 and cfg.l1_latency == 40
        assert cfg.l1_tlb_entries == 32 and cfg.l1_tlb_assoc == 8
        assert cfg.num_sms == 16
        assert cfg.l2_size == 2 * 1024 * 1024 and cfg.l2_latency == 70
        assert cfg.l2_tlb_entries == 1024
        assert cfg.num_walkers == 64 and cfg.walk_latency == 500
        assert cfg.dram_bandwidth_gbps == 256 and cfg.dram_latency == 200

    def test_derived(self):
        cfg = GPUConfig()
        assert cfg.dram_bandwidth_bytes_per_cycle == 256.0
        assert cfg.num_frames == cfg.gpu_memory_bytes // 4096

    def test_default_config_singleton_equal(self):
        assert DEFAULT_CONFIG == GPUConfig()

    def test_with_override(self):
        cfg = GPUConfig().with_(num_sms=8)
        assert cfg.num_sms == 8
        assert GPUConfig().num_sms == 16  # original untouched


class TestOccupancy:
    def kernel(self, rpt, smem=0):
        kb = KernelBuilder("k", regs_per_thread=rpt, smem_bytes_per_block=smem)
        kb.exit()
        return kb.build()

    def test_warp_limited(self):
        assert GPUConfig().blocks_per_sm(self.kernel(8), 256) == 8

    def test_register_limited(self):
        # 128 regs * 4B * 256 threads = 128KB -> 2 blocks in a 256KB RF
        assert GPUConfig().blocks_per_sm(self.kernel(128), 256) == 2

    def test_smem_limited(self):
        assert GPUConfig().blocks_per_sm(self.kernel(8, smem=16384), 128) == 2

    def test_tb_slot_limited(self):
        assert GPUConfig().blocks_per_sm(self.kernel(1), 32) == 16


class TestTimeScale:
    def test_interconnect_scaled(self):
        s = NVLINK.scaled(4.0)
        assert s.migrate_cost == NVLINK.migrate_cost / 4
        assert s.alloc_cost == NVLINK.alloc_cost / 4
        assert s.cpu_service == NVLINK.cpu_service / 4
        assert s.msg_occupancy == NVLINK.msg_occupancy / 4
        assert s.signal_latency == pytest.approx(NVLINK.signal_latency / 4)

    def test_config_time_scaled(self):
        cfg = GPUConfig().time_scaled(8.0)
        assert cfg.gpu_handler_latency == GPUConfig().gpu_handler_latency / 8
        assert cfg.time_scale == 8.0

    def test_registry(self):
        assert INTERCONNECTS["nvlink"] is NVLINK
        assert INTERCONNECTS["pcie"] is PCIE

    def test_us_constant(self):
        assert US == 1000.0  # 1 GHz: 1us = 1000 cycles


class TestInterconnectBudgets:
    def test_nvlink_decomposition(self):
        # signal + msg + cpu = alloc cost; + transfer = migrate cost
        total = NVLINK.signal_latency + NVLINK.msg_occupancy + NVLINK.cpu_service
        assert total == pytest.approx(NVLINK.alloc_cost)
        assert NVLINK.alloc_cost + NVLINK.transfer_time == pytest.approx(
            NVLINK.migrate_cost
        )

    def test_pcie_transfer_costlier(self):
        assert PCIE.transfer_time > NVLINK.transfer_time
        assert PCIE.msg_occupancy > NVLINK.msg_occupancy


class TestThreadBlockScheduler:
    def make_trace(self, blocks):
        trace = KernelTrace("k", grid_dim=blocks, block_dim=32)
        trace.blocks = [BlockTrace(block_id=i) for i in range(blocks)]
        return trace

    def test_fifo_order(self):
        sched = ThreadBlockScheduler(self.make_trace(4))
        ids = [sched.next_block(0).block_id for _ in range(4)]
        assert ids == [0, 1, 2, 3]

    def test_drains_to_none(self):
        sched = ThreadBlockScheduler(self.make_trace(1))
        assert sched.pending == 1
        sched.next_block(0)
        assert sched.pending == 0
        assert sched.next_block(0) is None
        assert sched.dispatched == 1
