"""Compiler-layer tests: CFG construction, liveness, DCE, constant
folding, and the WAR-eliminating register renaming ablation."""

import pytest

from repro.functional import Interpreter, Launch
from repro.isa import Imm, KernelBuilder, Opcode, P, R, Special, SReg
from repro.opt import (
    Cfg,
    Liveness,
    constant_folding,
    count_memory_war_hazards,
    dead_code_elimination,
    optimize,
    rename_war_registers,
)
from repro.vm import SparseMemory

OUT = 0x100000


def straightline():
    kb = KernelBuilder("s", regs_per_thread=16)
    kb.mov(R(0), Imm(1.0))
    kb.fadd(R(1), R(0), Imm(2.0))
    kb.global_thread_id(R(2))
    kb.imad(R(3), R(2), Imm(4), Imm(OUT))
    kb.st_global(R(3), R(1))
    kb.exit()
    return kb.build()


def branchy():
    kb = KernelBuilder("b", regs_per_thread=16)
    kb.mov(R(0), SReg(Special.LANE))
    kb.isetp(P(0), "lt", R(0), Imm(16))
    with kb.if_else(P(0)) as orelse:
        kb.mov(R(1), Imm(1.0))
        orelse()
        kb.mov(R(1), Imm(2.0))
    kb.global_thread_id(R(2))
    kb.imad(R(3), R(2), Imm(4), Imm(OUT))
    kb.st_global(R(3), R(1))
    kb.exit()
    return kb.build()


def run_functional(kernel, grid=1, block=32):
    mem = SparseMemory()
    Interpreter(memory=mem).run(Launch(kernel, grid, block))
    return mem.read_array(OUT, grid * block)


class TestCfg:
    def test_straightline_single_block(self):
        cfg = Cfg(straightline())
        assert len(cfg) == 1
        assert cfg.blocks[0].successors == []

    def test_if_else_diamond(self):
        cfg = Cfg(branchy())
        # entry, then-arm, else-arm, join (+ possibly a trailing block)
        assert len(cfg) >= 4
        entry = cfg.blocks[0]
        assert len(entry.successors) == 2

    def test_block_of_pc(self):
        cfg = Cfg(branchy())
        for block in cfg.blocks:
            for pc in block.pcs():
                assert cfg.block_of(pc) is block

    def test_predecessors_consistent(self):
        cfg = Cfg(branchy())
        for block in cfg.blocks:
            for succ in block.successors:
                assert block.index in cfg.blocks[succ].predecessors


class TestLiveness:
    def test_dead_def_detected(self):
        kb = KernelBuilder("d", regs_per_thread=16)
        kb.mov(R(5), Imm(9.0))  # dead: never used
        kb.mov(R(0), Imm(1.0))
        kb.global_thread_id(R(2))
        kb.imad(R(3), R(2), Imm(4), Imm(OUT))
        kb.st_global(R(3), R(0))
        kb.exit()
        kernel = kb.build()
        dead = Liveness(Cfg(kernel)).dead_defs()
        assert dead == [0]

    def test_live_across_branch(self):
        kernel = branchy()
        live = Liveness(Cfg(kernel))
        # R1 is defined in both arms and used at the join: live out of arms
        join_uses = any(1 in s for s in live.live_in)
        assert join_uses

    def test_guarded_write_keeps_old_value_live(self):
        kb = KernelBuilder("g", regs_per_thread=16)
        kb.mov(R(1), Imm(1.0))
        kb.isetp(P(0), "lt", SReg(Special.LANE), Imm(8))
        kb.mov(R(1), Imm(2.0), guard=P(0))  # merges -> R1 is also a use
        kb.global_thread_id(R(2))
        kb.imad(R(3), R(2), Imm(4), Imm(OUT))
        kb.st_global(R(3), R(1))
        kb.exit()
        kernel = kb.build()
        dead = Liveness(Cfg(kernel)).dead_defs()
        assert 0 not in dead  # the first mov is NOT dead


class TestDce:
    def test_removes_dead_and_preserves_semantics(self):
        kb = KernelBuilder("d", regs_per_thread=16)
        kb.mov(R(5), Imm(9.0))  # dead
        kb.fadd(R(6), R(5), Imm(1.0))  # becomes dead once R6 unused
        kb.mov(R(0), Imm(3.0))
        kb.global_thread_id(R(2))
        kb.imad(R(3), R(2), Imm(4), Imm(OUT))
        kb.st_global(R(3), R(0))
        kb.exit()
        kernel = kb.build()
        before = run_functional(kernel)
        optimized, removed = dead_code_elimination(kernel)
        assert removed == 2
        assert run_functional(optimized) == before

    def test_branch_targets_remapped(self):
        kb = KernelBuilder("d", regs_per_thread=16)
        kb.mov(R(9), Imm(1.0))  # dead, sits before the branch
        kb.mov(R(0), SReg(Special.LANE))
        kb.isetp(P(0), "lt", R(0), Imm(16))
        with kb.if_(P(0)):
            kb.mov(R(1), Imm(5.0))
        kb.global_thread_id(R(2))
        kb.imad(R(3), R(2), Imm(4), Imm(OUT))
        kb.st_global(R(3), R(1))
        kb.exit()
        kernel = kb.build()
        before = run_functional(kernel)
        optimized, removed = dead_code_elimination(kernel)
        assert removed >= 1
        optimized.validate()
        assert run_functional(optimized) == before

    def test_memory_ops_never_removed(self):
        kernel = straightline()
        optimized, _ = dead_code_elimination(kernel)
        stores = [i for i in optimized.instructions
                  if i.op is Opcode.ST_GLOBAL]
        assert len(stores) == 1


class TestConstantFolding:
    def test_folds_immediates(self):
        kb = KernelBuilder("c", regs_per_thread=16)
        kb.iadd(R(0), Imm(3), Imm(4))
        kb.fmul(R(1), Imm(2.0), Imm(5.0))
        kb.global_thread_id(R(2))
        kb.imad(R(3), R(2), Imm(4), Imm(OUT))
        kb.st_global(R(3), R(1))
        kb.exit()
        kernel = kb.build()
        folded_kernel, folded = constant_folding(kernel)
        assert folded == 2
        assert folded_kernel.instructions[0].op is Opcode.MOV
        assert folded_kernel.instructions[0].srcs[0] == Imm(7)
        assert run_functional(folded_kernel) == [10.0] * 32

    def test_leaves_register_ops(self):
        kernel = straightline()
        _, folded = constant_folding(kernel)
        assert folded == 0


class TestWarRenaming:
    def war_kernel(self):
        """The lbm pattern: loads through a reused address register."""
        kb = KernelBuilder("war", regs_per_thread=16)
        kb.global_thread_id(R(0))
        kb.imad(R(1), R(0), Imm(4), Imm(OUT))
        kb.mov(R(4), Imm(0.0))
        for d in range(3):
            kb.iadd(R(2), R(1), Imm(d * 4096))  # reused address register
            kb.ld_global(R(5 + d), R(2))
        for d in range(3):
            kb.fadd(R(4), R(4), R(5 + d))
        kb.st_global(R(1), R(4))
        kb.exit()
        return kb.build()

    def test_counts_hazards(self):
        assert count_memory_war_hazards(self.war_kernel()) == 2

    def test_renaming_removes_hazards(self):
        kernel = self.war_kernel()
        renamed, count = rename_war_registers(kernel)
        assert count == 2
        assert count_memory_war_hazards(renamed) == 0
        assert renamed.regs_per_thread == kernel.regs_per_thread + 2

    def test_renaming_preserves_semantics(self):
        kernel = self.war_kernel()
        before = run_functional(kernel)
        renamed, _ = rename_war_registers(kernel)
        assert run_functional(renamed) == before

    def test_budget_respected(self):
        kernel = self.war_kernel()
        renamed, count = rename_war_registers(kernel, extra_regs=1)
        assert count == 1
        assert renamed.regs_per_thread == kernel.regs_per_thread + 1

    def test_rename_recovers_replay_queue_performance(self):
        """The ablation: renaming lbm's address registers recovers most of
        the replay-queue loss (software alternative to the operand log)."""
        from repro.core import make_scheme
        from repro.system import GpuSimulator
        from repro.workloads.parboil import Lbm

        wl = Lbm(grid_dim=16, iters=2)
        base_kernel = wl.kernel
        trace = wl.trace()

        def cycles(kernel):
            sim = GpuSimulator(
                kernel, trace, wl.make_address_space(),
                scheme=make_scheme("replay-queue"), paging="premapped",
            )
            return sim.run().cycles

        renamed, count = rename_war_registers(base_kernel, extra_regs=24)
        assert count > 0
        # NOTE: the timing simulator replays the same trace; renaming only
        # changes the static instructions' register operands, which is
        # exactly what the scoreboards see.
        plain = cycles(base_kernel)
        # rebuild trace instructions against renamed kernel: the trace holds
        # references to the original instructions, so re-trace via a clone
        wl2 = Lbm(grid_dim=16, iters=2)
        wl2._kernel = renamed
        trace2 = wl2.trace()
        sim = GpuSimulator(
            renamed, trace2, wl2.make_address_space(),
            scheme=make_scheme("replay-queue"), paging="premapped",
        )
        improved = sim.run().cycles
        assert improved < plain


class TestOptimizePipeline:
    def test_full_pipeline_preserves_semantics(self):
        for build in (straightline, branchy):
            kernel = build()
            before = run_functional(kernel)
            assert run_functional(optimize(kernel)) == before
