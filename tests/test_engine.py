"""Event-queue tests: ordering, FIFO ties, cancel, fired, drain."""

from hypothesis import given
from hypothesis import strategies as st

from repro.timing import EventQueue


class TestEventQueue:
    def test_time_order(self):
        q = EventQueue()
        log = []
        q.schedule(5.0, lambda t: log.append(("b", t)))
        q.schedule(1.0, lambda t: log.append(("a", t)))
        q.run_until(10.0)
        assert log == [("a", 1.0), ("b", 5.0)]

    def test_fifo_on_ties(self):
        q = EventQueue()
        log = []
        for i in range(5):
            q.schedule(3.0, lambda t, i=i: log.append(i))
        q.run_until(3.0)
        assert log == [0, 1, 2, 3, 4]

    def test_run_until_is_inclusive(self):
        q = EventQueue()
        log = []
        q.schedule(2.0, lambda t: log.append("x"))
        q.schedule(2.5, lambda t: log.append("y"))
        assert q.run_until(2.0) == 1
        assert log == ["x"]
        assert q.next_time == 2.5

    def test_cancel(self):
        q = EventQueue()
        log = []
        ev = q.schedule(1.0, lambda t: log.append("x"))
        ev.cancel()
        q.run_until(10.0)
        assert log == []
        assert not ev.fired

    def test_fired_flag(self):
        q = EventQueue()
        ev = q.schedule(1.0, lambda t: None)
        assert not ev.fired
        q.run_until(1.0)
        assert ev.fired

    def test_events_scheduled_during_run(self):
        q = EventQueue()
        log = []

        def first(t):
            log.append("first")
            q.schedule(t + 1, lambda t2: log.append("second"))

        q.schedule(1.0, first)
        q.run_until(5.0)
        assert log == ["first", "second"]

    def test_drain(self):
        q = EventQueue()
        log = []
        q.schedule(100.0, lambda t: log.append(1))
        q.schedule(50.0, lambda t: log.append(0))
        q.drain()
        assert log == [0, 1]
        assert len(q) == 0

    @given(st.lists(st.floats(min_value=0, max_value=1e6), max_size=50))
    def test_processed_in_nondecreasing_time(self, times):
        q = EventQueue()
        seen = []
        for t in times:
            q.schedule(t, lambda tt: seen.append(tt))
        q.drain()
        assert seen == sorted(seen)
