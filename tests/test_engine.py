"""Event-queue tests: ordering, FIFO ties, cancel, fired, drain."""

from hypothesis import given
from hypothesis import strategies as st

from repro.timing import EventQueue


class TestEventQueue:
    def test_time_order(self):
        q = EventQueue()
        log = []
        q.schedule(5.0, lambda t: log.append(("b", t)))
        q.schedule(1.0, lambda t: log.append(("a", t)))
        q.run_until(10.0)
        assert log == [("a", 1.0), ("b", 5.0)]

    def test_fifo_on_ties(self):
        q = EventQueue()
        log = []
        for i in range(5):
            q.schedule(3.0, lambda t, i=i: log.append(i))
        q.run_until(3.0)
        assert log == [0, 1, 2, 3, 4]

    def test_run_until_is_inclusive(self):
        q = EventQueue()
        log = []
        q.schedule(2.0, lambda t: log.append("x"))
        q.schedule(2.5, lambda t: log.append("y"))
        assert q.run_until(2.0) == 1
        assert log == ["x"]
        assert q.next_time == 2.5

    def test_cancel(self):
        q = EventQueue()
        log = []
        ev = q.schedule(1.0, lambda t: log.append("x"))
        ev.cancel()
        q.run_until(10.0)
        assert log == []
        assert not ev.fired

    def test_fired_flag(self):
        q = EventQueue()
        ev = q.schedule(1.0, lambda t: None)
        assert not ev.fired
        q.run_until(1.0)
        assert ev.fired

    def test_events_scheduled_during_run(self):
        q = EventQueue()
        log = []

        def first(t):
            log.append("first")
            q.schedule(t + 1, lambda t2: log.append("second"))

        q.schedule(1.0, first)
        q.run_until(5.0)
        assert log == ["first", "second"]

    def test_drain(self):
        q = EventQueue()
        log = []
        q.schedule(100.0, lambda t: log.append(1))
        q.schedule(50.0, lambda t: log.append(0))
        q.drain()
        assert log == [0, 1]
        assert len(q) == 0

    @given(st.lists(st.floats(min_value=0, max_value=1e6), max_size=50))
    def test_processed_in_nondecreasing_time(self, times):
        q = EventQueue()
        seen = []
        for t in times:
            q.schedule(t, lambda tt: seen.append(tt))
        q.drain()
        assert seen == sorted(seen)


class _StubSanitizer:
    """Minimal sanitizer double: records violations instead of raising."""

    def __init__(self, max_events_per_advance=1_000_000):
        self.max_events_per_advance = max_events_per_advance
        self.regressions = []
        self.storms = []

    def heap_regression(self, scheduled, last_fired):
        self.regressions.append((scheduled, last_fired))

    def heap_storm(self, time, ran):
        self.storms.append((time, ran))


class TestCallFastPath:
    """`EventQueue.call` — the handle-free entry used for never-cancelled
    events — must be indistinguishable from `schedule` in dispatch order
    and accounting."""

    def test_call_runs_with_time_argument(self):
        q = EventQueue()
        log = []
        q.call(4.0, log.append)
        q.call(2.0, log.append)
        assert q.run_until(10.0) == 2
        assert log == [2.0, 4.0]

    def test_call_and_schedule_share_bucket_fifo(self):
        """Mixed entries at one timestamp fire in schedule order — a tuple
        entry occupies the same FIFO slot an Event would."""
        q = EventQueue()
        log = []
        q.schedule(3.0, lambda t: log.append("ev0"))
        q.call(3.0, lambda t: log.append("call1"))
        q.schedule(3.0, lambda t: log.append("ev2"))
        q.call(3.0, lambda t: log.append("call3"))
        q.run_until(3.0)
        assert log == ["ev0", "call1", "ev2", "call3"]

    def test_call_accounting_matches_schedule(self):
        q = EventQueue()
        q.call(1.0, lambda t: None)
        q.call(1.0, lambda t: None)
        q.schedule(2.0, lambda t: None)
        assert q.scheduled == 3
        assert len(q) == 3
        assert q.peak == 3
        q.run_until(5.0)
        assert q.processed == 3
        assert len(q) == 0

    def test_call_during_dispatch_joins_live_bucket(self):
        """A call() made at the current timestamp from inside a callback
        fires in the same pass, like a same-time schedule() does."""
        q = EventQueue()
        log = []

        def first(t):
            log.append("first")
            q.call(t, lambda t2: log.append("second"))

        q.call(1.0, first)
        assert q.run_until(1.0) == 2
        assert log == ["first", "second"]

    def test_drain_dispatches_tuples_and_tracks_frontier(self):
        q = EventQueue()
        log = []
        q.call(7.0, log.append)
        q.schedule(3.0, log.append)
        q.drain()
        assert log == [3.0, 7.0]
        assert q.processed == 2
        assert len(q) == 0
        # drain advances the frontier used by sanitized scheduling checks
        assert q._last_fired == 7.0

    def test_drain_skips_cancelled_but_counts_tuples(self):
        q = EventQueue()
        log = []
        ev = q.schedule(1.0, lambda t: log.append("cancelled"))
        ev.cancel()
        q.call(1.0, lambda t: log.append("kept"))
        q.drain()
        assert log == ["kept"]
        assert q.processed == 1


class TestSanitizedDispatch:
    """The checked dispatch loop (chaos runs) must count each event exactly
    once and see tuple entries through the same invariants."""

    def test_sanitized_run_fires_tuples_in_order(self):
        q = EventQueue()
        q.attach_sanitizer(_StubSanitizer())
        log = []
        q.call(2.0, log.append)
        q.schedule(1.0, log.append)
        assert q.run_until(5.0) == 2
        assert log == [1.0, 2.0]
        assert q.processed == 2

    def test_call_past_frontier_reports_regression(self):
        q = EventQueue()
        san = _StubSanitizer()
        q.attach_sanitizer(san)
        q.call(5.0, lambda t: None)
        q.run_until(5.0)
        q.call(1.0, lambda t: None)  # behind the fired frontier
        assert san.regressions == [(1.0, 5.0)]

    def test_heap_storm_does_not_double_count_processed(self):
        """When the per-advance limit trips, events fired before the storm
        report are folded into ``processed`` exactly once — even with a
        tolerant sanitizer that returns instead of raising."""
        q = EventQueue()
        san = _StubSanitizer(max_events_per_advance=3)
        q.attach_sanitizer(san)
        for _ in range(5):
            q.call(1.0, lambda t: None)
        ran = q.run_until(1.0)
        assert ran == 5
        assert q.processed == 5  # not 5 + pre-storm remainder
        assert san.storms  # the limit was reported

    def test_sanitized_drain_equivalence(self):
        """Same event set, same order, sanitizer attached or not."""
        def build():
            q = EventQueue()
            log = []
            q.call(2.0, lambda t: log.append(("c", t)))
            q.schedule(2.0, lambda t: log.append(("s", t)))
            q.call(9.0, lambda t: log.append(("c", t)))
            return q, log

        q1, log1 = build()
        q1.run_until(100.0)
        q2, log2 = build()
        q2.attach_sanitizer(_StubSanitizer())
        q2.run_until(100.0)
        assert log1 == log2
