"""Property tests: the ready-list fast path vs. the reference issue scan.

`SmPipeline.try_issue` (the hot-loop fast path) and
`SmPipeline._try_issue_reference` (the original full round-robin scan, kept
as the executable specification) must be indistinguishable: same
instructions issued, by the same warps, at the same cycles, for *any*
trace.  Hypothesis drives randomized warp programs — hazard chains, memory
instructions, matched barriers — through both paths and requires identical
issue logs; a second group replays the committed golden-digest cases with
``REPRO_REFERENCE_ISSUE=1`` so the equivalence also holds end-to-end
through the full simulator (docs/PERFORMANCE.md).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.harness import golden
from repro.isa import R

from tests.test_timing_sm import (
    _record_issues,
    make_sm,
    run_to_completion,
    t_alu,
    t_bar,
    t_exit,
    t_load,
    t_store,
)

# ---------------------------------------------------------------------------
# random warp-program strategies
# ---------------------------------------------------------------------------

_reg = st.integers(min_value=0, max_value=7).map(R)
_line = st.integers(min_value=0, max_value=31)


@st.composite
def _instruction(draw):
    kind = draw(st.sampled_from(["alu", "alu", "alu", "load", "store"]))
    if kind == "alu":
        return t_alu(draw(_reg), draw(_reg))
    addrs = [
        ln * 128 + off
        for ln, off in zip(
            draw(st.lists(_line, min_size=1, max_size=4)),
            draw(st.lists(st.integers(0, 31), min_size=4, max_size=4)),
        )
    ]
    if kind == "load":
        return t_load(draw(_reg), draw(_reg), addrs)
    return t_store(draw(_reg), draw(_reg), addrs)


@st.composite
def _warp_programs(draw):
    """1-4 warps, 1-2 segments separated by matched barriers.

    Every warp gets a BAR at each segment boundary (a block-wide barrier
    must be reached by all warps or the block deadlocks), then EXIT."""
    n_warps = draw(st.integers(min_value=1, max_value=4))
    n_segments = draw(st.integers(min_value=1, max_value=2))
    programs = []
    for _ in range(n_warps):
        prog = []
        for seg in range(n_segments):
            prog.extend(
                draw(st.lists(_instruction(), min_size=0, max_size=5))
            )
            if seg + 1 < n_segments:
                prog.append(t_bar())
        prog.append(t_exit())
        programs.append(prog)
    return programs


def _run(programs, reference):
    sm, events, _ = make_sm(programs)
    if reference:
        sm.try_issue = sm._try_issue_reference
    log = _record_issues(sm)
    cycles = run_to_completion(sm, events)
    return log, cycles, sm.stats.issued, sm.stats.committed


class TestIssuePathEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(_warp_programs())
    def test_fast_path_matches_reference_scan(self, programs):
        fast_log, fast_cycles, fast_issued, fast_committed = _run(
            programs, reference=False
        )
        ref_log, ref_cycles, ref_issued, ref_committed = _run(
            programs, reference=True
        )
        assert fast_log == ref_log
        assert fast_cycles == ref_cycles
        assert (fast_issued, fast_committed) == (ref_issued, ref_committed)

    @settings(max_examples=25, deadline=None)
    @given(_warp_programs())
    def test_fast_path_is_deterministic(self, programs):
        """Same program twice through the fast path -> same log (guards
        against accidental dict/set iteration-order dependence)."""
        log1, cycles1, _, _ = _run(programs, reference=False)
        log2, cycles2, _, _ = _run(programs, reference=False)
        assert log1 == log2
        assert cycles1 == cycles2


class TestEndToEndEquivalence:
    """The reference scan must reproduce the committed golden digests that
    pin the fast path — closing the loop: fast == golden == reference."""

    def test_reference_issue_matches_golden_digests(self, monkeypatch):
        monkeypatch.setenv("REPRO_REFERENCE_ISSUE", "1")
        fixture = golden.load_fixture()
        cases = [
            {"workload": "saxpy", "scheme": "baseline", "paging": "demand"},
            {"workload": "saxpy", "scheme": "replay-queue", "paging": "demand"},
            {"workload": "tlb-thrash", "scheme": "wd-lastcheck",
             "paging": "demand"},
        ]
        for case in cases:
            key = golden.case_key(case)
            want = fixture["cases"][key]
            got = golden.run_case(case)
            assert got["digest"] == want["digest"], (
                f"{key}: reference issue path diverged from golden digest"
            )
