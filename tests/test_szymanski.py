"""Szymanski mutual-exclusion algorithm tests: real-thread exclusion and
state-machine properties."""

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.vm import SzymanskiLock, SzymanskiMutex


class TestSzymanskiThreads:
    def test_mutual_exclusion_under_contention(self):
        n_threads = 4
        iters = 200
        mutex = SzymanskiMutex(n_threads)
        counter = {"value": 0}

        def worker():
            for _ in range(iters):
                with mutex:
                    v = counter["value"]
                    counter["value"] = v + 1

        threads = [threading.Thread(target=worker) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter["value"] == n_threads * iters

    def test_too_many_threads_rejected(self):
        mutex = SzymanskiMutex(1)

        with mutex:
            pass  # main thread takes slot 0

        failures = []

        def worker():
            try:
                with mutex:
                    pass
            except RuntimeError:
                failures.append(True)

        t = threading.Thread(target=worker)
        t.start()
        t.join()
        assert failures


class TestSzymanskiSingle:
    def test_single_process_acquires_immediately(self):
        lock = SzymanskiLock(1)
        lock.acquire(0)
        assert lock.in_critical(0)
        lock.release(0)
        assert lock.flags[0] == 0

    def test_uncontended_multi_slot(self):
        lock = SzymanskiLock(3)
        for me in range(3):
            lock.acquire(me)
            assert lock.in_critical(me)
            lock.release(me)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            SzymanskiLock(0)


class TestSzymanskiProperties:
    """Sequential-consistency check: run random interleavings of two
    acquire/release pairs on worker threads and assert exclusion."""

    @given(st.integers(min_value=2, max_value=5), st.integers(0, 1000))
    @settings(max_examples=10, deadline=None)
    def test_exclusion_random_thread_counts(self, n, seed):
        lock = SzymanskiLock(n)
        in_critical = []
        overlap = []

        def worker(me):
            lock.acquire(me, spin_sleep=1e-6)
            in_critical.append(me)
            if len(in_critical) > 1:
                overlap.append(tuple(in_critical))
            in_critical.remove(me)
            lock.release(me, spin_sleep=1e-6)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(n)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not overlap
        assert lock.flags == [0] * n
