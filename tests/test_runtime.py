"""Runtime-facade tests: managed memory, launches, residency persistence,
explicit transfers, device heap, use-case toggles."""

import pytest

from repro.isa import Imm, KernelBuilder, R
from repro.runtime import DevicePointer, GpuDevice, RuntimeError_


def saxpy_kernel():
    kb = KernelBuilder("saxpy", regs_per_thread=12)
    kb.global_thread_id(R(0))
    kb.imad(R(1), R(0), Imm(4), kb.param(0))
    kb.imad(R(2), R(0), Imm(4), kb.param(1))
    kb.ld_global(R(3), R(1))
    kb.ld_global(R(4), R(2))
    kb.ffma(R(5), R(3), kb.param(2), R(4))
    kb.st_global(R(2), R(5))
    kb.exit()
    return kb.build()


def malloc_kernel(chunk=128):
    kb = KernelBuilder("heapuser", regs_per_thread=16)
    kb.global_thread_id(R(0))
    kb.malloc(R(1), Imm(chunk))
    kb.st_global(R(1), Imm(3.0))
    kb.ld_global(R(2), R(1))
    kb.imad(R(3), R(0), Imm(4), kb.param(0))
    kb.st_global(R(3), R(2))
    kb.exit()
    return kb.build()


N_BLOCKS, BLOCK = 8, 64
N = N_BLOCKS * BLOCK


class TestManagedMemory:
    def test_end_to_end_saxpy(self):
        dev = GpuDevice(time_scale=8.0)
        x = dev.malloc_managed(N * 4)
        y = dev.malloc_managed(N * 4)
        dev.fill(x, [float(i) for i in range(N)])
        dev.fill(y, [1.0] * N)
        result = dev.launch(saxpy_kernel(), grid=N_BLOCKS, block=BLOCK,
                            args=[x, y, 2.0])
        assert result.cycles > 0
        assert dev.read(y, 4) == [1.0, 3.0, 5.0, 7.0]
        assert result.fault_stats.migrations > 0  # inputs migrated on demand

    def test_residency_persists_across_launches(self):
        dev = GpuDevice(time_scale=8.0)
        x = dev.malloc_managed(N * 4)
        y = dev.malloc_managed(N * 4)
        dev.fill(x, [1.0] * N)
        dev.fill(y, [0.0] * N)
        kernel = saxpy_kernel()
        first = dev.launch(kernel, N_BLOCKS, BLOCK, args=[x, y, 1.0])
        second = dev.launch(kernel, N_BLOCKS, BLOCK, args=[x, y, 1.0])
        assert first.fault_stats.groups_resolved > 0
        assert second.fault_stats.groups_resolved == 0  # pages resident now
        assert second.cycles < first.cycles
        assert dev.total_cycles == first.cycles + second.cycles
        assert len(dev.launches) == 2

    def test_explicit_memcpy_avoids_faults(self):
        dev = GpuDevice(time_scale=8.0)
        x = dev.malloc_managed(N * 4)
        y = dev.malloc_managed(N * 4)
        dev.fill(x, [1.0] * N)
        dev.fill(y, [0.0] * N)
        dev.memcpy_to_device(x)
        dev.memcpy_to_device(y)
        res = dev.launch(saxpy_kernel(), N_BLOCKS, BLOCK, args=[x, y, 1.0])
        assert res.fault_stats.groups_resolved == 0

    def test_untouched_allocation_first_touch(self):
        dev = GpuDevice(time_scale=8.0)
        x = dev.malloc_managed(N * 4)
        y = dev.malloc_managed(N * 4)  # never written by the host
        dev.fill(x, [2.0] * N)
        res = dev.launch(saxpy_kernel(), N_BLOCKS, BLOCK, args=[x, y, 1.0])
        assert res.fault_stats.first_touch > 0

    def test_resident_pages_grow(self):
        dev = GpuDevice(time_scale=8.0)
        x = dev.malloc_managed(N * 4)
        y = dev.malloc_managed(N * 4)
        dev.fill(x, [1.0] * N)
        assert dev.resident_pages() == 0
        dev.launch(saxpy_kernel(), N_BLOCKS, BLOCK, args=[x, y, 1.0])
        assert dev.resident_pages() > 0


class TestValidation:
    def test_bad_allocation_size(self):
        with pytest.raises(RuntimeError_):
            GpuDevice().malloc_managed(0)

    def test_fill_overflow(self):
        dev = GpuDevice()
        x = dev.malloc_managed(16)
        with pytest.raises(RuntimeError_):
            dev.fill(x, [0.0] * 100)

    def test_use_cases_need_preemptible_scheme(self):
        with pytest.raises(RuntimeError_):
            GpuDevice(scheme="baseline", block_switching=True)

    def test_pointer_is_indexable(self):
        dev = GpuDevice()
        x = dev.malloc_managed(64)
        assert int(x) == x.address


class TestDeviceHeap:
    def test_device_malloc_faults_handled_locally(self):
        dev = GpuDevice(
            time_scale=8.0, local_handling=True,
            heap_bytes=1 << 22, heap_arenas=64,
        )
        out = dev.malloc_managed(N * 4)
        res = dev.launch(malloc_kernel(), N_BLOCKS, BLOCK, args=[out])
        assert dev.read(out, 3) == [3.0, 3.0, 3.0]
        assert res.fault_stats.handled_locally > 0

    def test_local_vs_cpu_handling_comparison(self):
        def run(local):
            dev = GpuDevice(
                time_scale=8.0, local_handling=local,
                heap_bytes=1 << 22, heap_arenas=64,
            )
            out = dev.malloc_managed(N * 4)
            return dev.launch(malloc_kernel(), N_BLOCKS, BLOCK, args=[out])

        cpu = run(False)
        gpu = run(True)
        assert cpu.fault_stats.handled_locally == 0
        assert gpu.fault_stats.handled_locally > 0

    def test_block_switching_through_runtime(self):
        dev = GpuDevice(time_scale=8.0, block_switching=True)
        x = dev.malloc_managed(N * 4)
        y = dev.malloc_managed(N * 4)
        dev.fill(x, [1.0] * N)
        res = dev.launch(saxpy_kernel(), N_BLOCKS, BLOCK, args=[x, y, 1.0])
        assert res.cycles > 0  # completes with the local scheduler active


class TestRuntimeChaos:
    """The runtime-facade injection hooks (docs/ROBUSTNESS.md): seeded
    allocation failures and stream teardown mid-kernel, both structured
    and retryable — the serving layer's retry paths depend on it."""

    def _engine(self, seed, **rates):
        from dataclasses import replace

        from repro.chaos import ChaosConfig, ChaosEngine

        zero = ChaosConfig(seed=seed).scaled(0.0)
        return ChaosEngine(replace(zero, **rates))

    def test_alloc_failure_is_structured_and_transient(self):
        from repro.runtime import AllocationFailure

        dev = GpuDevice(
            time_scale=8.0,
            chaos=self._engine(7, alloc_fail_rate=0.5),
        )
        failures = 0
        ptr = None
        for _ in range(64):  # deterministic per seed; bound is a backstop
            try:
                ptr = dev.malloc_managed(N * 4)
                break
            except AllocationFailure as exc:
                failures += 1
                assert exc.nbytes == N * 4
        assert ptr is not None
        assert failures == dev.chaos.injections["runtime.alloc_fail"]
        # the device stayed fully usable
        dev.fill(ptr, [1.0] * N)
        assert dev.read(ptr, 2) == [1.0, 1.0]

    def test_stream_teardown_requeues_and_resumes(self):
        from repro.runtime import StreamTeardownError

        dev = GpuDevice(
            time_scale=8.0,
            chaos=self._engine(3, stream_teardown_rate=0.5),
        )
        x = dev.malloc_managed(N * 4)
        y = dev.malloc_managed(N * 4)
        dev.fill(x, [1.0] * N)
        dev.fill(y, [0.0] * N)
        s0, s1 = dev.create_stream(), dev.create_stream()
        kernel = saxpy_kernel()
        h0 = s0.launch(kernel, N_BLOCKS, BLOCK, args=[x, y, 1.0])
        h1 = s1.launch(kernel, N_BLOCKS, BLOCK, args=[x, y, 1.0])
        teardowns = 0
        result = None
        for _ in range(64):
            try:
                result = dev.synchronize()
                break
            except StreamTeardownError as exc:
                teardowns += 1
                assert exc.pending == 2  # queued work survives the error
        assert result is not None and teardowns >= 1
        assert h0.done and h1.done
        assert dev.chaos.injections["runtime.stream_teardown"] == teardowns
        assert dev.synchronize() is None  # queue fully drained

    def test_same_seed_same_runtime_injections(self):
        from repro.runtime import AllocationFailure

        def outcomes(seed):
            dev = GpuDevice(chaos=self._engine(seed, alloc_fail_rate=0.5))
            pattern = []
            for _ in range(20):
                try:
                    dev.malloc_managed(256)
                    pattern.append("ok")
                except AllocationFailure:
                    pattern.append("fail")
            return pattern

        assert outcomes(11) == outcomes(11)
        assert "fail" in outcomes(11)

    def test_disabled_engine_is_free(self):
        from repro.chaos import ChaosConfig, ChaosEngine

        dev = GpuDevice(chaos=ChaosEngine(ChaosConfig().scaled(0.0)))
        assert dev.chaos is None  # chaos_active normalized it away
