"""Tests for the fault-tolerant parallel campaign runner
(:mod:`repro.harness.runner`): deterministic merging, bit-identity with
the serial path for any worker count, checkpoint/resume (including a
SIGKILLed campaign), retry/backoff for transient failures, and graceful
degradation."""

import glob
import json
import os
import signal
import subprocess
import sys
import time
import types

import pytest

from repro.harness import store
from repro.harness.results import ExperimentTable, merge_tables
from repro.harness.runner import (
    CampaignCell,
    CampaignRunner,
    TRANSIENT_KINDS,
    build_all_cells,
)
from repro.telemetry import merge_dumps


# ---------------------------------------------------------------------------
# module-level experiment functions (must be importable: they cross a
# process boundary, and the SIGKILL test re-imports this module)
# ---------------------------------------------------------------------------

def _table(tag="row", value=1.0, name="t"):
    table = ExperimentTable(name=name, description="test table",
                            columns=["v"])
    table.add_row(tag, [value])
    return table


def _ok_cell(tag="row", value=1.0, quick=False, workloads=None):
    return _table(tag, value)


def _crash_cell(tag="row", quick=False, workloads=None):
    raise RuntimeError("deterministic boom")


def _flaky_cell(marker, tag="flaky"):
    """Dies with a raw exit (-> ChildCrash) until ``marker`` exists, then
    succeeds — a transient failure the runner should retry through."""
    if not os.path.exists(marker):
        with open(marker, "w"):
            pass
        os._exit(13)
    return _table(tag)


def _always_crashing_child(tag="row"):
    os._exit(13)


def _hang_unless_reseeded(seed=0):
    """Raises SimulationHang for the original seed; any reseeded attempt
    (seed bumped past 1000) succeeds."""
    if seed < 1000:
        from repro.chaos.watchdog import HangDiagnostic, SimulationHang

        raise SimulationHang(
            HangDiagnostic(cycle=1.0, cycle_budget=1.0,
                           blocks_remaining=1, committed=0)
        )
    return _table(f"seed{seed}")


def _wait_for_file_gone(block, tag="slow"):
    deadline = time.time() + 120
    while os.path.exists(block) and time.time() < deadline:
        time.sleep(0.05)
    return _table(tag)


def _sigkill_cells(out_root):
    """The two-cell campaign used by the SIGKILL test: a fast cell and a
    cell that blocks while ``<out_root>/block`` exists.  Built from the
    out_root so the parent test and the killed subprocess agree on the
    cells' config hashes."""
    block = os.path.join(out_root, "block")
    return [
        CampaignCell(key="fast", fn=_ok_cell, kwargs={"tag": "fast"},
                     group="g"),
        CampaignCell(key="slow", fn=_wait_for_file_gone,
                     kwargs={"block": block}, group="g"),
    ]


def _sigkill_driver(out_root):
    """Subprocess entry for the SIGKILL test."""
    runner = CampaignRunner(
        _sigkill_cells(out_root), workers=1,
        out_dir=os.path.join(out_root, "campaign"),
    )
    runner.run()


def _sigkill_resume(out_root):
    """Subprocess entry for the resume leg of the SIGKILL test: resumes
    the killed campaign and dumps the outcome summary as JSON.  Runs in a
    subprocess so the cells' config hashes (which include the experiment
    function's module name) match the killed driver's."""
    runner = CampaignRunner(
        _sigkill_cells(out_root), workers=1,
        out_dir=os.path.join(out_root, "campaign"), resume=True,
    )
    result = runner.run()
    summary = {
        "skipped": result.skipped,
        "completed": result.completed,
        "rows": list(result.tables["g"].rows),
    }
    with open(os.path.join(out_root, "resume.json"), "w") as fh:
        json.dump(summary, fh)


# ---------------------------------------------------------------------------
# merging
# ---------------------------------------------------------------------------

class TestMergeTables:
    def _shard(self, labels, note=None):
        t = ExperimentTable(name="m", description="d", columns=["a", "b"])
        for i, label in enumerate(labels):
            t.add_row(label, [float(i), float(i) * 2])
        if note:
            t.notes.append(note)
        return t

    def test_rows_concatenate_in_shard_order(self):
        merged = merge_tables([self._shard(["x"]), self._shard(["y", "z"])])
        assert list(merged.rows) == ["x", "y", "z"]
        assert merged.columns == ["a", "b"]

    def test_duplicate_rows_rejected(self):
        with pytest.raises(ValueError, match="duplicate row"):
            merge_tables([self._shard(["x"]), self._shard(["x"])])

    def test_column_mismatch_rejected(self):
        other = ExperimentTable(name="m", description="d", columns=["a"])
        other.add_row("y", [1.0])
        with pytest.raises(ValueError, match="columns"):
            merge_tables([self._shard(["x"]), other])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            merge_tables([])

    def test_notes_dedup_first_occurrence(self):
        merged = merge_tables(
            [self._shard(["x"], note="n1"), self._shard(["y"], note="n1"),
             self._shard(["z"], note="n2")]
        )
        assert merged.notes == ["n1", "n2"]

    def test_roundtrip_and_row_prefix(self):
        t = self._shard(["x"])
        clone = ExperimentTable.from_dict(t.to_dict())
        assert clone.to_dict() == t.to_dict()
        prefixed = t.with_row_prefix("wl/")
        assert list(prefixed.rows) == ["wl/x"]
        assert t.with_row_prefix("") is t


class TestMergeDumps:
    def test_values_sum_and_rollup_recomputed(self):
        d1 = {"counters": {"a.x": 1, "a.y": 2}, "metadata": {"who": "d1"}}
        d2 = {"counters": {"a.x": 10}, "metadata": {"who": "d2"}}
        merged = merge_dumps([d1, d2])
        assert merged["counters"] == {"a.x": 11, "a.y": 2}
        assert merged["rollup"]["a"]["_total"] == 13
        assert merged["metadata"]["who"] == "d1"  # first writer wins
        assert merged["metadata"]["merged_dumps"] == 2

    def test_merge_is_order_sensitive_only_in_metadata(self):
        d1 = {"counters": {"a": 1}, "metadata": {"who": "d1"}}
        d2 = {"counters": {"a": 2}, "metadata": {"who": "d2"}}
        fwd, rev = merge_dumps([d1, d2]), merge_dumps([d2, d1])
        assert fwd["counters"] == rev["counters"]


# ---------------------------------------------------------------------------
# bit-identity with the serial path
# ---------------------------------------------------------------------------

class TestParallelBitIdentity:
    WORKLOADS = ["saxpy", "stream-sum"]

    @pytest.fixture(scope="class")
    def serial_table(self):
        from repro.harness.experiments import run_fig10

        return run_fig10(workloads=self.WORKLOADS).to_dict()

    @pytest.mark.parametrize("workers", [1, 2, 3])
    def test_workers_match_serial(self, workers, serial_table):
        from repro.harness.experiments import run_fig10

        cells = build_all_cells({"fig10": run_fig10},
                                workloads=self.WORKLOADS)
        result = CampaignRunner(cells, workers=workers,
                                echo=lambda _: None).run()
        assert result.ok
        assert result.tables["fig10"].to_dict() == serial_table

    def test_cells_cover_every_workload_in_order(self):
        from repro.harness.experiments import run_fig10

        cells = build_all_cells({"fig10": run_fig10},
                                workloads=self.WORKLOADS)
        assert [c.key for c in cells] == [
            "fig10/saxpy", "fig10/stream-sum"
        ]

    def test_unsharded_and_custom_experiments_single_cell(self):
        cells = build_all_cells({"table2": lambda: None,
                                 "custom": _ok_cell})
        by_key = {c.key: c for c in cells}
        assert by_key["table2"].kwargs == {}
        assert by_key["custom"].kwargs == {"quick": False}


# ---------------------------------------------------------------------------
# checkpoints + resume
# ---------------------------------------------------------------------------

class TestCheckpointResume:
    def _cells(self, n=3):
        return [
            CampaignCell(key=f"g/c{i}", fn=_ok_cell,
                         kwargs={"tag": f"c{i}"}, group="g")
            for i in range(n)
        ]

    def test_resume_requires_out_dir(self):
        with pytest.raises(ValueError, match="resume"):
            CampaignRunner(self._cells(), resume=True)

    def test_duplicate_keys_rejected(self):
        cells = self._cells(1) * 2
        with pytest.raises(ValueError, match="duplicate"):
            CampaignRunner(cells)

    def test_resume_skips_completed_cells(self, tmp_path):
        out = str(tmp_path / "camp")
        first = CampaignRunner(self._cells(), out_dir=out,
                               echo=lambda _: None).run()
        assert first.completed == ["g/c0", "g/c1", "g/c2"]
        second = CampaignRunner(self._cells(), out_dir=out, resume=True,
                                echo=lambda _: None).run()
        assert second.completed == []
        assert second.skipped == ["g/c0", "g/c1", "g/c2"]
        assert second.tables["g"].to_dict() == first.tables["g"].to_dict()

    def test_stale_checkpoint_reexecutes(self, tmp_path):
        out = str(tmp_path / "camp")
        CampaignRunner(self._cells(), out_dir=out,
                       echo=lambda _: None).run()
        changed = [
            CampaignCell(key="g/c0", fn=_ok_cell,
                         kwargs={"tag": "c0", "value": 2.0}, group="g")
        ]
        result = CampaignRunner(changed, out_dir=out, resume=True,
                                echo=lambda _: None).run()
        assert result.skipped == []
        assert result.completed == ["g/c0"]
        assert result.tables["g"].rows["c0"] == [2.0]

    def test_failed_checkpoint_reexecutes(self, tmp_path):
        out = str(tmp_path / "camp")
        marker = str(tmp_path / "marker")
        cells = [CampaignCell(key="g/flaky", fn=_flaky_cell,
                              kwargs={"marker": marker}, group="g")]
        first = CampaignRunner(cells, out_dir=out, max_attempts=1,
                               echo=lambda _: None).run()
        assert first.failed == ["g/flaky"]
        assert first.failures[0].kind == "ChildCrash"
        # same config hash, but the recorded failure must not be trusted
        second = CampaignRunner(cells, out_dir=out, resume=True,
                                max_attempts=1, echo=lambda _: None).run()
        assert second.completed == ["g/flaky"]
        assert second.ok

    def test_truncated_checkpoint_reexecutes(self, tmp_path):
        out = str(tmp_path / "camp")
        cells = self._cells(1)
        runner = CampaignRunner(cells, out_dir=out, echo=lambda _: None)
        runner.run()
        path = runner._checkpoint_path(cells[0])
        with open(path, "w") as fh:
            fh.write('{"version": 1, "status": "ok"')  # torn write
        result = CampaignRunner(cells, out_dir=out, resume=True,
                                echo=lambda _: None).run()
        assert result.completed == [cells[0].key]

    def test_manifest_and_counters_written(self, tmp_path):
        out = str(tmp_path / "camp")
        result = CampaignRunner(self._cells(2), out_dir=out,
                                echo=lambda _: None).run()
        manifest = json.load(open(result.manifest_path))
        assert manifest["totals"] == {
            "cells": 2, "completed": 2, "skipped": 0, "failed": 0,
            "not_run": 0,
        }
        assert [c["status"] for c in manifest["cells"]] == ["ok", "ok"]
        # counters.json is the deterministic merge: per-cell dumps only,
        # in cell order — identical bytes for any worker count/placement.
        counters = json.load(open(result.counters_path))
        assert counters["counters"]["harness.cell.attempts"] == 2
        assert "harness.campaign.completed" not in counters["counters"]
        assert counters["metadata"]["merged_dumps"] == 2
        # ops_counters.json folds in the run-shape campaign counters.
        ops = json.load(open(result.ops_counters_path))
        assert ops["counters"]["harness.campaign.completed"] == 2
        assert ops["counters"]["harness.cell.attempts"] == 2
        assert ops["metadata"]["merged_dumps"] == 3  # campaign + 2 cells
        # tables.json is the canonical merged-table artifact.
        tables = json.load(open(result.tables_path))
        assert set(tables) == set(result.tables)

    def test_torn_manifest_reruns_uncorroborated_checkpoint(self, tmp_path):
        """A driver killed between the checkpoint write and the manifest
        rewrite leaves a valid checkpoint the manifest never
        acknowledged.  Resume must surface it as stale-and-rerun, not
        silently restore it."""
        out = str(tmp_path / "camp")
        cells = self._cells(2)
        runner = CampaignRunner(cells, out_dir=out, echo=lambda _: None)
        runner.run()
        # Simulate the torn write: roll the manifest back to a state that
        # predates the second cell's checkpoint.
        manifest_path = os.path.join(out, "manifest.json")
        manifest = json.load(open(manifest_path))
        for entry in manifest["cells"]:
            if entry["key"] == cells[1].key:
                entry["status"] = "not-run"
        with open(manifest_path, "w") as fh:
            json.dump(manifest, fh)
        lines = []
        second = CampaignRunner(cells, out_dir=out, resume=True,
                                echo=lines.append).run()
        assert second.skipped == [cells[0].key]
        assert second.completed == [cells[1].key]
        assert second.counters["counters"]["harness.campaign.torn"] == 1
        assert any("torn" in line for line in lines)

    def test_missing_manifest_reruns_all_checkpoints(self, tmp_path):
        """No manifest at all (killed before the first rewrite, or a
        deleted file) corroborates nothing: every checkpoint is torn."""
        out = str(tmp_path / "camp")
        cells = self._cells(2)
        CampaignRunner(cells, out_dir=out, echo=lambda _: None).run()
        os.remove(os.path.join(out, "manifest.json"))
        second = CampaignRunner(cells, out_dir=out, resume=True,
                                echo=lambda _: None).run()
        assert second.skipped == []
        assert second.completed == [c.key for c in cells]
        assert second.counters["counters"]["harness.campaign.torn"] == 2

    def test_sigkilled_campaign_resumes(self, tmp_path):
        """SIGKILL the campaign process mid-run; --resume must skip the
        checkpointed cell and finish only the interrupted one."""
        out_root = str(tmp_path)
        block = os.path.join(out_root, "block")
        with open(block, "w"):
            pass
        out = os.path.join(out_root, "campaign")
        repo_src = os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(repo_src, "src"),
             os.path.join(repo_src, "tests"),
             env.get("PYTHONPATH", "")]
        )
        proc = subprocess.Popen(
            [sys.executable, "-c",
             "from test_campaign_runner import _sigkill_driver;"
             f" _sigkill_driver({out_root!r})"],
            env=env, cwd=repo_src,
        )
        try:
            cells_dir = os.path.join(out, "cells")
            deadline = time.time() + 60

            def fast_checkpointed():
                return glob.glob(os.path.join(cells_dir, "fast.*.json"))

            while not fast_checkpointed():
                assert proc.poll() is None, "driver exited early"
                assert time.time() < deadline, "fast cell never checkpointed"
                time.sleep(0.05)
            os.kill(proc.pid, signal.SIGKILL)
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
        os.remove(block)  # unblock the slow cell for the resumed run
        subprocess.run(
            [sys.executable, "-c",
             "from test_campaign_runner import _sigkill_resume;"
             f" _sigkill_resume({out_root!r})"],
            env=env, cwd=repo_src, check=True, timeout=120,
        )
        summary = json.load(open(os.path.join(out_root, "resume.json")))
        assert summary["skipped"] == ["fast"]
        assert summary["completed"] == ["slow"]
        assert summary["rows"] == ["fast", "slow"]


# ---------------------------------------------------------------------------
# retry / backoff
# ---------------------------------------------------------------------------

class TestRetryBackoff:
    def test_transient_kinds(self):
        assert TRANSIENT_KINDS == {"Timeout", "SimulationHang", "ChildCrash"}

    def test_transient_failure_retried_until_success(self, tmp_path):
        marker = str(tmp_path / "marker")
        sleeps = []
        cells = [CampaignCell(key="flaky", fn=_flaky_cell,
                              kwargs={"marker": marker}, group="g")]
        result = CampaignRunner(cells, max_attempts=3, backoff_base=0.25,
                                sleep=sleeps.append,
                                echo=lambda _: None).run()
        assert result.ok
        assert sleeps == [0.25]  # one retry, base delay
        assert result.counters["counters"]["harness.campaign.retries"] == 1

    def test_backoff_schedule_exponential_and_bounded(self):
        sleeps = []
        cells = [CampaignCell(key="dead", fn=_always_crashing_child,
                              group="g")]
        result = CampaignRunner(cells, max_attempts=4, backoff_base=0.5,
                                backoff_cap=1.5, sleep=sleeps.append,
                                echo=lambda _: None).run()
        assert result.failed == ["dead"]
        # 4 attempts => 3 backoffs: 0.5, 1.0, then capped at 1.5
        assert sleeps == [0.5, 1.0, 1.5]
        failure = result.failures[0]
        assert failure.kind == "ChildCrash"
        assert failure.attempts == 4

    def test_deterministic_failure_fails_fast(self):
        sleeps = []
        cells = [CampaignCell(key="boom", fn=_crash_cell, group="g")]
        result = CampaignRunner(cells, max_attempts=5, sleep=sleeps.append,
                                echo=lambda _: None).run()
        assert sleeps == []  # RuntimeError is not transient: no retry
        assert result.failures[0].kind == "RuntimeError"
        assert len(result.failures[0].traceback_text) > 0

    def test_hang_retries_reseeded(self):
        cells = [CampaignCell(key="hang", fn=_hang_unless_reseeded,
                              kwargs={"seed": 7}, group="g")]
        result = CampaignRunner(cells, max_attempts=2,
                                sleep=lambda _: None,
                                echo=lambda _: None).run()
        assert result.ok
        assert list(result.tables["g"].rows) == ["seed1007"]

    def test_ledger_persisted_in_checkpoint(self, tmp_path):
        out = str(tmp_path / "camp")
        marker = str(tmp_path / "marker")
        cells = [CampaignCell(key="flaky", fn=_flaky_cell,
                              kwargs={"marker": marker}, group="g")]
        runner = CampaignRunner(cells, out_dir=out, max_attempts=3,
                                backoff_base=0.1, sleep=lambda _: None,
                                echo=lambda _: None)
        runner.run()
        ckpt = store.read_json(runner._checkpoint_path(cells[0]))
        assert [e["status"] for e in ckpt["ledger"]] == ["failed", "ok"]
        assert ckpt["ledger"][0]["kind"] == "ChildCrash"
        assert ckpt["ledger"][0]["backoff_s"] == 0.1

    def test_keep_going_completes_remaining_cells(self):
        cells = [
            CampaignCell(key="a-boom", fn=_crash_cell, group="a"),
            CampaignCell(key="b-ok", fn=_ok_cell, group="b"),
            CampaignCell(key="c-boom", fn=_crash_cell, group="c"),
        ]
        result = CampaignRunner(cells, keep_going=True,
                                echo=lambda _: None).run()
        assert result.failed == ["a-boom", "c-boom"]
        assert result.completed == ["b-ok"]
        assert not result.ok
        assert result.failed_groups == ["a", "c"]

    def test_stop_on_failure_leaves_cells_not_run(self):
        cells = [
            CampaignCell(key="a-boom", fn=_crash_cell, group="a"),
            CampaignCell(key="b-ok", fn=_ok_cell, group="b"),
        ]
        result = CampaignRunner(cells, keep_going=False,
                                echo=lambda _: None).run()
        assert result.failed == ["a-boom"]
        assert result.not_run == ["b-ok"]
        assert not result.ok


# ---------------------------------------------------------------------------
# graceful degradation
# ---------------------------------------------------------------------------

class TestDegradation:
    def test_no_start_method_degrades_to_serial(self, monkeypatch):
        import repro.harness.runner as runner_mod

        monkeypatch.setattr(
            runner_mod, "process_isolation_available", lambda: False
        )
        warnings = []
        cells = [CampaignCell(key=f"c{i}", fn=_ok_cell,
                              kwargs={"tag": f"c{i}"}, group="g")
                 for i in range(3)]
        result = CampaignRunner(cells, workers=4,
                                echo=warnings.append).run()
        assert result.ok
        assert result.degraded
        assert any("falling back to serial" in w for w in warnings)
        assert result.counters["counters"]["harness.campaign.degraded"] == 1

    def test_pool_setup_failure_degrades_to_serial(self, monkeypatch):
        import threading

        import repro.harness.runner as runner_mod

        def exploding_thread(*args, **kwargs):
            raise RuntimeError("can't start new thread")

        stub = types.SimpleNamespace(
            Thread=exploding_thread,
            Lock=threading.Lock,
            Event=threading.Event,
            get_ident=threading.get_ident,
        )
        monkeypatch.setattr(runner_mod, "threading", stub)
        warnings = []
        cells = [CampaignCell(key=f"c{i}", fn=_ok_cell,
                              kwargs={"tag": f"c{i}"}, group="g")
                 for i in range(2)]
        result = CampaignRunner(cells, workers=2,
                                echo=warnings.append).run()
        assert result.ok
        assert result.degraded
        assert result.completed == ["c0", "c1"]
        assert any("worker pool setup failed" in w for w in warnings)


# ---------------------------------------------------------------------------
# workers=auto
# ---------------------------------------------------------------------------

class TestWorkersAuto:
    def _one_cell(self):
        return [CampaignCell(key="c0", fn=_ok_cell, group="g")]

    def test_auto_resolves_from_cpu_count_and_logs(self, monkeypatch):
        from repro.harness import runner as runner_mod

        monkeypatch.setattr(runner_mod.os, "cpu_count", lambda: 3)
        lines = []
        runner = CampaignRunner(self._one_cell(), workers="auto",
                                echo=lines.append)
        assert runner.workers == 3
        assert any("workers=auto -> 3" in line for line in lines)

    def test_auto_clamps_to_cap(self, monkeypatch):
        from repro.harness import runner as runner_mod

        monkeypatch.setattr(runner_mod.os, "cpu_count", lambda: 128)
        runner = CampaignRunner(self._one_cell(), workers="auto",
                                echo=lambda _: None)
        assert runner.workers == runner_mod.AUTO_WORKERS_CAP

    def test_auto_survives_unknown_cpu_count(self, monkeypatch):
        from repro.harness import runner as runner_mod

        monkeypatch.setattr(runner_mod.os, "cpu_count", lambda: None)
        runner = CampaignRunner(self._one_cell(), workers="auto",
                                echo=lambda _: None)
        assert runner.workers == 1

    def test_bad_spec_rejected(self):
        with pytest.raises(ValueError, match="auto"):
            CampaignRunner(self._one_cell(), workers="turbo",
                           echo=lambda _: None)

    def test_cli_accepts_auto(self, monkeypatch, capsys):
        import repro.harness.__main__ as cli

        monkeypatch.setattr(cli, "ALL_EXPERIMENTS", {"ok": _ok_cell})
        assert cli.main(["ok", "--workers", "auto"]) == 0

    def test_cli_rejects_garbage(self, capsys):
        from repro.harness.__main__ import main

        with pytest.raises(SystemExit) as exc_info:
            main(["fig10", "--workers", "fast"])
        assert exc_info.value.code == 2


# ---------------------------------------------------------------------------
# CLI integration
# ---------------------------------------------------------------------------

class TestCampaignCli:
    def test_parallel_all_keeps_going_and_exits_nonzero(
        self, monkeypatch, capsys
    ):
        import repro.harness.__main__ as cli

        monkeypatch.setattr(
            cli, "ALL_EXPERIMENTS",
            {"a-boom": _crash_cell, "b-ok": _ok_cell,
             "c-boom": _crash_cell},
        )
        code = cli.main(["all", "--workers", "2"])
        assert code == 1
        captured = capsys.readouterr()
        assert "test table" in captured.out
        assert "2 experiment(s) failed" in captured.err
        assert "(1 completed)" in captured.err

    def test_out_and_resume_flags(self, monkeypatch, capsys, tmp_path):
        import repro.harness.__main__ as cli

        monkeypatch.setattr(cli, "ALL_EXPERIMENTS", {"ok": _ok_cell})
        out = str(tmp_path / "camp")
        assert cli.main(["ok", "--out", out]) == 0
        capsys.readouterr()
        assert cli.main(["ok", "--out", out, "--resume"]) == 0
        captured = capsys.readouterr()
        assert "restored from checkpoint" in captured.err
        assert "test table" in captured.out

    def test_resume_without_out_is_a_usage_error(self, capsys):
        from repro.harness.__main__ import main

        with pytest.raises(SystemExit) as exc_info:
            main(["fig10", "--resume"])
        assert exc_info.value.code == 2

    def test_chaos_soak_mode(self, capsys, tmp_path):
        from repro.harness.__main__ import main

        out = str(tmp_path / "soak")
        code = main(
            ["chaos", "--workloads", "saxpy", "--seeds", "3", "--schemes",
             "replay-queue", "--intensity", "5", "--workers", "2",
             "--out", out]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "saxpy/s3/replay-queue" in captured.out
        assert os.path.exists(os.path.join(out, "manifest.json"))

    def test_chaos_without_workload_errors(self, capsys):
        from repro.harness.__main__ import main

        with pytest.raises(SystemExit) as exc_info:
            main(["chaos"])
        assert exc_info.value.code == 2

    def test_campaign_flags_documented(self, capsys):
        from repro.harness.__main__ import main

        with pytest.raises(SystemExit):
            main(["--help"])
        help_text = capsys.readouterr().out
        for flag in ("--workers", "--out", "--resume", "--max-attempts",
                     "--backoff-base"):
            assert flag in help_text


# ---------------------------------------------------------------------------
# adaptive per-cell timeouts (history-derived from the previous manifest)
# ---------------------------------------------------------------------------

def _slow_until_marker(marker, tag="slow"):
    """Sleeps past any reasonable adaptive timeout on the first attempt
    (creating ``marker``), returns promptly once the marker exists — a
    cell whose adaptive timeout was simply too tight."""
    if not os.path.exists(marker):
        with open(marker, "w"):
            pass
        time.sleep(30)
    return _table(tag)


class TestAdaptiveTimeouts:
    def _cell(self, **kwargs):
        return CampaignCell(key="g/ok", fn=_ok_cell, kwargs=kwargs,
                            group="g")

    def test_derived_from_previous_manifest(self, tmp_path):
        out = str(tmp_path / "camp")
        cells = [self._cell()]
        assert CampaignRunner(cells, out_dir=out,
                              echo=lambda m: None).run().ok
        runner = CampaignRunner(cells, out_dir=out, echo=lambda m: None)
        result = runner.run()
        assert result.ok
        # a sub-second cell gets the floor, not a sub-second timeout
        assert runner._cell_timeouts == {"g/ok": 10.0}
        assert result.counters["counters"][
            "harness.campaign.adaptive_timeouts"] == 1

    def test_caps_at_campaign_timeout_and_scales_duration(self, tmp_path):
        cell = self._cell()
        entry = {"status": "ok", "config_hash": cell.config_hash(),
                 "duration_s": 100.0}
        capped = CampaignRunner([cell], out_dir=str(tmp_path), timeout=50.0,
                                echo=lambda m: None)
        capped._seed_adaptive_timeouts({"g/ok": entry})
        assert capped._cell_timeouts == {"g/ok": 50.0}
        free = CampaignRunner([cell], out_dir=str(tmp_path),
                              echo=lambda m: None)
        free._seed_adaptive_timeouts({"g/ok": entry})
        assert free._cell_timeouts == {"g/ok": 400.0}

    def test_ignores_stale_failed_or_missing_history(self, tmp_path):
        cell = self._cell()
        runner = CampaignRunner([cell], out_dir=str(tmp_path),
                                echo=lambda m: None)
        runner._seed_adaptive_timeouts({
            "g/ok": {"status": "ok", "config_hash": "deadbeef",
                     "duration_s": 5.0},
        })
        runner._seed_adaptive_timeouts({
            "g/ok": {"status": "failed",
                     "config_hash": cell.config_hash(),
                     "duration_s": 5.0},
        })
        runner._seed_adaptive_timeouts({})
        assert runner._cell_timeouts == {}

    def test_disabled_derives_nothing(self, tmp_path):
        out = str(tmp_path / "camp")
        cells = [self._cell()]
        assert CampaignRunner(cells, out_dir=out,
                              echo=lambda m: None).run().ok
        runner = CampaignRunner(cells, out_dir=out, adaptive_timeout=False,
                                echo=lambda m: None)
        assert runner.run().ok
        assert runner._cell_timeouts == {}

    def test_timeout_retry_escalates_allowance(self, tmp_path):
        marker = str(tmp_path / "marker")
        cell = CampaignCell(key="g/slow", fn=_slow_until_marker,
                            kwargs={"marker": marker}, group="g")
        runner = CampaignRunner([cell], max_attempts=3,
                                sleep=lambda s: None, echo=lambda m: None)
        runner._cell_timeouts["g/slow"] = 2.0
        outcome = runner._run_cell(cell)
        assert outcome.ok
        first, second = outcome.ledger[0], outcome.ledger[1]
        assert first["status"] == "failed" and first["kind"] == "Timeout"
        assert first["timeout_s"] == 2.0
        assert second["status"] == "ok"

    def test_cli_flag_plumbed(self, monkeypatch, tmp_path, capsys):
        import repro.harness.__main__ as cli

        monkeypatch.setattr(cli, "ALL_EXPERIMENTS", {"ok": _ok_cell})
        out = str(tmp_path / "camp")
        assert cli.main(["ok", "--out", out]) == 0
        capsys.readouterr()
        assert cli.main(["ok", "--out", out, "--no-adaptive-timeout"]) == 0
        assert "adaptive timeouts derived" not in capsys.readouterr().err
        assert cli.main(["ok", "--out", out]) == 0
        assert "adaptive timeouts derived" in capsys.readouterr().err
