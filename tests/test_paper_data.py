"""Tests of the paper-expectations data and the comparison helper."""

import pytest

from repro.harness import ExperimentTable
from repro.harness.paper import (
    FAULT_COSTS,
    FIG10_GEOMEANS,
    FIG13_GEOMEANS,
    HANDLER_LATENCY,
    TABLE2,
    Comparison,
    compare_geomeans,
    format_comparison,
)
from repro.system import NVLINK, PCIE


class TestPaperConstantsConsistency:
    """The structured paper data must agree with the system configuration —
    one source of truth for the measured constants."""

    def test_fault_costs_match_interconnects(self):
        assert FAULT_COSTS["nvlink"] == (NVLINK.migrate_cost, NVLINK.alloc_cost)
        assert FAULT_COSTS["pcie"] == (PCIE.migrate_cost, PCIE.alloc_cost)

    def test_handler_latency_matches_config(self):
        from repro.system import GPUConfig

        assert HANDLER_LATENCY["gpu"] == GPUConfig().gpu_handler_latency
        assert HANDLER_LATENCY["cpu"] == NVLINK.cpu_service

    def test_table2_matches_area_power_model(self):
        from repro.core import overheads

        for kb, row in TABLE2.items():
            got = overheads(kb)
            assert got.sm_area_pct == pytest.approx(row[0], abs=0.06)
            assert got.gpu_power_pct == pytest.approx(row[3], abs=0.06)

    def test_orderings(self):
        assert (
            FIG10_GEOMEANS["wd-commit"]
            < FIG10_GEOMEANS["wd-lastcheck"]
            < FIG10_GEOMEANS["replay-queue"]
        )
        assert FIG13_GEOMEANS["pcie"] > FIG13_GEOMEANS["nvlink"]


class TestComparison:
    def test_compare_geomeans(self):
        table = ExperimentTable("t", "d", columns=["a", "b"])
        table.add_row("x", [0.8, 0.9])
        comps = compare_geomeans(table, {"a": 0.84, "c": 1.0})
        assert set(comps) == {"a"}
        assert comps["a"].paper == 0.84
        assert comps["a"].measured == pytest.approx(0.8)
        assert comps["a"].within == pytest.approx(0.04)

    def test_format(self):
        comps = {"a": Comparison("a", 0.84, 0.80)}
        text = format_comparison(comps)
        assert "paper" in text and "-0.040" in text
