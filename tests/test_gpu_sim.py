"""End-to-end timing-simulator tests on micro workloads: scheme ordering,
determinism, demand paging, use cases, scalability knobs."""

import pytest

from repro.core import OperandLog, make_scheme
from repro.system import (
    DeadlockError,
    GPUConfig,
    GpuSimulator,
    NVLINK,
    PCIE,
)
from repro.workloads import MICRO, get_workload


def simulate(wl, scheme="baseline", paging="premapped", config=None, **kw):
    scheme_obj = make_scheme(scheme) if isinstance(scheme, str) else scheme
    sim = GpuSimulator(
        kernel=wl.kernel,
        trace=wl.trace(),
        address_space=wl.make_address_space(),
        config=config,
        scheme=scheme_obj,
        paging=paging,
        **kw,
    )
    return sim.run()


@pytest.fixture(scope="module")
def saxpy():
    return MICRO.fresh("saxpy")


@pytest.fixture(scope="module")
def stream():
    return MICRO.fresh("stream-sum")


class TestBasicExecution:
    def test_all_blocks_complete(self, saxpy):
        res = simulate(saxpy)
        assert res.blocks == saxpy.grid_dim
        done = sum(s.blocks_completed for s in res.sm_stats)
        assert done == saxpy.grid_dim

    def test_all_instructions_commit(self, saxpy):
        res = simulate(saxpy)
        issued = sum(s.issued for s in res.sm_stats)
        committed = sum(s.committed for s in res.sm_stats)
        assert issued == committed == res.dynamic_instructions

    def test_deterministic(self, stream):
        a = simulate(stream).cycles
        b = simulate(stream).cycles
        assert a == b

    def test_ipc_reasonable(self, stream):
        res = simulate(stream)
        assert 0.01 < res.ipc < 2 * GPUConfig().num_sms

    def test_bad_paging_mode_rejected(self, saxpy):
        with pytest.raises(ValueError, match="paging"):
            simulate(saxpy, paging="lazy")


class TestSchemeOrdering:
    """No-fault runs: the baseline is the upper bound; wd-commit is the
    most restrictive scheme (paper Section 5.2)."""

    def test_baseline_fastest(self, stream):
        base = simulate(stream, "baseline").cycles
        for name in ("wd-commit", "wd-lastcheck", "replay-queue"):
            assert simulate(stream, name).cycles >= base * 0.99

    def test_wd_commit_most_restrictive(self, stream):
        wd = simulate(stream, "wd-commit").cycles
        lastcheck = simulate(stream, "wd-lastcheck").cycles
        assert wd >= lastcheck

    def test_large_operand_log_matches_baseline(self, stream):
        base = simulate(stream, "baseline").cycles
        log = simulate(stream, OperandLog(64)).cycles
        assert log == pytest.approx(base, rel=0.05)


class TestDemandPaging:
    def test_faults_resolve_and_finish(self, saxpy):
        res = simulate(saxpy, "replay-queue", paging="demand")
        fs = res.fault_stats
        assert fs.groups_resolved > 0
        assert fs.migrations > 0  # x and y are CPU-dirty inputs
        assert res.cycles > simulate(saxpy, "replay-queue").cycles

    def test_premapped_runs_have_no_faults(self, saxpy):
        res = simulate(saxpy, "baseline")
        assert res.fault_stats.groups_resolved == 0

    def test_pcie_slower_than_nvlink(self, stream):
        nv = simulate(stream, "replay-queue", paging="demand",
                      interconnect=NVLINK).cycles
        pcie = simulate(stream, "replay-queue", paging="demand",
                        interconnect=PCIE).cycles
        assert pcie > nv

    def test_demand_output_only_first_touch(self, stream):
        res = simulate(stream, "replay-queue", paging="demand-output")
        fs = res.fault_stats
        assert fs.migrations == 0
        assert fs.first_touch > 0


class TestUseCases:
    def test_block_switching_requires_preemptible(self, saxpy):
        with pytest.raises(ValueError, match="preemptible"):
            simulate(saxpy, "baseline", paging="demand", block_switching=True)

    def test_block_switching_switches_under_fault_pressure(self, stream):
        config = GPUConfig().time_scaled(8.0)
        res = simulate(
            stream, "replay-queue", paging="demand", config=config,
            interconnect=NVLINK.scaled(8.0), block_switching=True,
        )
        assert sum(s.blocks_completed for s in res.sm_stats) == stream.grid_dim

    def test_local_handling_handles_first_touch(self, stream):
        res = simulate(
            stream, "replay-queue", paging="demand-output",
            local_handling=True,
        )
        assert res.fault_stats.handled_locally > 0
        assert res.fault_stats.first_touch > 0
        assert sum(s.local_handler_runs for s in res.sm_stats) > 0

    def test_local_handling_skips_migrations(self, stream):
        res = simulate(
            stream, "replay-queue", paging="demand", local_handling=True,
        )
        fs = res.fault_stats
        assert fs.handled_by_cpu > 0  # migrations still go to the CPU
        assert fs.handled_locally > 0  # output pages handled on the GPU


class TestConfigKnobs:
    def test_fewer_sms_slower(self, stream):
        few = simulate(stream, config=GPUConfig().with_(num_sms=4)).cycles
        many = simulate(stream, config=GPUConfig().with_(num_sms=16)).cycles
        assert few > many

    def test_occupancy_model(self):
        wl = get_workload("lbm")
        assert GPUConfig().blocks_per_sm(wl.kernel, wl.block_dim) == 1

    def test_kernel_too_big_rejected(self):
        from repro.isa import KernelBuilder

        kb = KernelBuilder("huge", regs_per_thread=254)
        kb.exit()
        with pytest.raises(ValueError, match="does not fit"):
            GPUConfig().blocks_per_sm(kb.build(), 1024)

    def test_max_cycles_guard(self, saxpy):
        sim = GpuSimulator(
            kernel=saxpy.kernel,
            trace=saxpy.trace(),
            address_space=saxpy.make_address_space(),
            scheme=make_scheme("baseline"),
        )
        with pytest.raises(DeadlockError):
            sim.run(max_cycles=1)

    def test_table1_render(self):
        rows = GPUConfig().table1()
        assert rows["Frequency"] == "1GHz"
        assert rows["Register File"] == "256KB"
        assert rows["Number of SMs"] == "16"
        assert rows["DRAM bandwidth"] == "256 GB/s"
