"""Low-level warp/block runtime-state tests (repro.timing.sm data types)."""

import pytest

from repro.functional.trace import BlockTrace, TraceInst, WarpTrace
from repro.isa import Instruction, Opcode, R
from repro.timing.sm import BlockRT, WarpRT


def tinst(op=Opcode.FADD):
    return TraceInst(pc=0, inst=Instruction(op, dest=R(1), srcs=(R(0),)),
                     active=32, addresses=None)


def make_warp(n_insts=3):
    block = BlockRT(BlockTrace(block_id=0), context_bytes=100, log_capacity=0)
    warp = WarpRT(0, [tinst() for _ in range(n_insts)], block)
    block.warps.append(warp)
    return warp, block


class TestWarpRT:
    def test_next_and_advance(self):
        warp, _ = make_warp(2)
        first = warp.next_inst()
        warp.advance()
        second = warp.next_inst()
        assert first is not second
        warp.advance()
        assert warp.next_inst() is None

    def test_replay_list_takes_priority(self):
        warp, _ = make_warp(2)
        replayed = tinst(Opcode.LD_GLOBAL)
        warp.replay_list.append(replayed)
        assert warp.next_inst() is replayed
        warp.advance()  # pops the replay entry, not the trace
        assert warp.idx == 0
        assert warp.next_inst() is warp.trace[0]

    def test_maybe_done_requires_everything_drained(self):
        warp, _ = make_warp(1)
        assert not warp.maybe_done()
        warp.advance()
        warp.inflight = 1
        assert not warp.maybe_done()  # still committing
        warp.inflight = 0
        warp.replay_list.append(tinst())
        assert not warp.maybe_done()  # replay work pending
        warp.replay_list.clear()
        assert warp.maybe_done()
        assert warp.done

    def test_scoreboard_tables_start_empty(self):
        warp, _ = make_warp()
        assert not warp.pw and not warp.pr
        assert not warp.pwp and not warp.prp
        assert warp.fetch_holds == 0


class TestBlockRT:
    def test_unresolved_at(self):
        _, block = make_warp()
        block.pending_groups[7] = 1000.0
        assert block.unresolved_at(500.0)
        assert not block.unresolved_at(1500.0)

    def test_is_done_tracks_warps(self):
        warp, block = make_warp(1)
        assert not block.is_done()
        warp.done = True
        assert block.is_done()

    def test_states(self):
        _, block = make_warp()
        assert block.state == BlockRT.ACTIVE
        for state in (BlockRT.SAVING, BlockRT.OFFCHIP, BlockRT.RESTORING,
                      BlockRT.DONE):
            block.state = state
            assert block.state == state

    def test_block_id_from_trace(self):
        block = BlockRT(BlockTrace(block_id=42), context_bytes=0,
                        log_capacity=0)
        assert block.block_id == 42
