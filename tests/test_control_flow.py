"""Divergence-stack and structured-control-flow correctness tests."""

import pytest

from repro.functional import FunctionalError, Interpreter, Launch
from repro.isa import Imm, KernelBuilder, P, R, Special, SReg
from repro.vm import SparseMemory

OUT = 0x100000


def run(build, grid=1, block=32):
    kb = KernelBuilder("cf", regs_per_thread=32)
    build(kb)
    kb.exit()
    mem = SparseMemory()
    Interpreter(memory=mem).run(Launch(kb.build(), grid, block))
    return mem.read_array(OUT, grid * block)


def store_result(kb, reg):
    kb.global_thread_id(R(30))
    kb.imad(R(31), R(30), Imm(4), Imm(OUT))
    kb.st_global(R(31), reg)


class TestIf:
    def test_uniform_taken(self):
        def build(kb):
            kb.mov(R(1), Imm(0.0))
            kb.isetp(P(0), "lt", Imm(0), Imm(1))  # always true
            with kb.if_(P(0)):
                kb.mov(R(1), Imm(5.0))
            store_result(kb, R(1))

        assert run(build) == [5.0] * 32

    def test_uniform_not_taken(self):
        def build(kb):
            kb.mov(R(1), Imm(3.0))
            kb.isetp(P(0), "lt", Imm(1), Imm(0))  # always false
            with kb.if_(P(0)):
                kb.mov(R(1), Imm(5.0))
            store_result(kb, R(1))

        assert run(build) == [3.0] * 32

    def test_divergent_if(self):
        def build(kb):
            kb.mov(R(0), SReg(Special.LANE))
            kb.mov(R(1), Imm(0.0))
            kb.isetp(P(0), "lt", R(0), Imm(10))
            with kb.if_(P(0)):
                kb.mov(R(1), Imm(1.0))
            kb.fadd(R(1), R(1), Imm(10.0))  # post-reconvergence: all lanes
            store_result(kb, R(1))

        assert run(build) == [11.0] * 10 + [10.0] * 22

    def test_if_negate(self):
        def build(kb):
            kb.mov(R(0), SReg(Special.LANE))
            kb.mov(R(1), Imm(0.0))
            kb.isetp(P(0), "lt", R(0), Imm(10))
            with kb.if_(P(0), negate=True):
                kb.mov(R(1), Imm(1.0))
            store_result(kb, R(1))

        assert run(build) == [0.0] * 10 + [1.0] * 22


class TestIfElse:
    def test_divergent_if_else(self):
        def build(kb):
            kb.mov(R(0), SReg(Special.LANE))
            kb.isetp(P(0), "lt", R(0), Imm(16))
            with kb.if_else(P(0)) as orelse:
                kb.mov(R(1), Imm(100.0))
                orelse()
                kb.mov(R(1), Imm(200.0))
            store_result(kb, R(1))

        assert run(build) == [100.0] * 16 + [200.0] * 16

    def test_nested_if_in_else(self):
        def build(kb):
            kb.mov(R(0), SReg(Special.LANE))
            kb.isetp(P(0), "lt", R(0), Imm(8))
            with kb.if_else(P(0)) as orelse:
                kb.mov(R(1), Imm(1.0))
                orelse()
                kb.isetp(P(1), "lt", R(0), Imm(16))
                with kb.if_else(P(1)) as orelse2:
                    kb.mov(R(1), Imm(2.0))
                    orelse2()
                    kb.mov(R(1), Imm(3.0))
            store_result(kb, R(1))

        assert run(build) == [1.0] * 8 + [2.0] * 8 + [3.0] * 16


class TestLoops:
    def test_uniform_for_range(self):
        def build(kb):
            kb.mov(R(1), Imm(0.0))
            with kb.for_range(R(2), 0, 10):
                kb.fadd(R(1), R(1), Imm(1.0))
            store_result(kb, R(1))

        assert run(build) == [10.0] * 32

    def test_for_range_with_step(self):
        def build(kb):
            kb.mov(R(1), Imm(0.0))
            with kb.for_range(R(2), 0, 10, step=3) as i:
                kb.fadd(R(1), R(1), i)  # 0+3+6+9
            store_result(kb, R(1))

        assert run(build) == [18.0] * 32

    def test_divergent_trip_counts(self):
        """Each lane loops `lane` times; reconverges at the loop exit."""

        def build(kb):
            kb.mov(R(0), SReg(Special.LANE))
            kb.mov(R(1), Imm(0.0))
            with kb.for_range(R(2), 0, R(0)):
                kb.fadd(R(1), R(1), Imm(1.0))
            kb.fadd(R(1), R(1), Imm(100.0))  # post-loop: everyone
            store_result(kb, R(1))

        assert run(build) == [100.0 + i for i in range(32)]

    def test_while_loop(self):
        def build(kb):
            kb.mov(R(1), Imm(0.0))
            kb.mov(R(2), Imm(5.0))

            def cond():
                kb.isetp(P(0), "gt", R(2), Imm(0))
                return P(0)

            with kb.while_(cond):
                kb.fadd(R(1), R(1), R(2))
                kb.isub(R(2), R(2), Imm(1))
            store_result(kb, R(1))

        assert run(build) == [15.0] * 32  # 5+4+3+2+1

    def test_loop_containing_divergent_if(self):
        def build(kb):
            kb.mov(R(0), SReg(Special.LANE))
            kb.mov(R(1), Imm(0.0))
            with kb.for_range(R(2), 0, 4):
                kb.and_(R(3), R(0), Imm(1))
                kb.isetp(P(0), "eq", R(3), Imm(1))
                with kb.if_(P(0)):
                    kb.fadd(R(1), R(1), Imm(1.0))
            store_result(kb, R(1))

        expect = [0.0 if i % 2 == 0 else 4.0 for i in range(32)]
        assert run(build) == expect


class TestExit:
    def test_predicated_exit_removes_lanes(self):
        def build(kb):
            kb.mov(R(0), SReg(Special.LANE))
            kb.global_thread_id(R(30))
            kb.imad(R(31), R(30), Imm(4), Imm(OUT))
            kb.st_global(R(31), Imm(1.0))
            kb.isetp(P(0), "lt", R(0), Imm(16))
            kb.emit_exit = kb.emit  # readability no-op
            from repro.isa import Instruction, Opcode

            kb.emit(Instruction(Opcode.EXIT, guard=P(0)))
            kb.st_global(R(31), Imm(2.0))  # only surviving lanes

        assert run(build) == [1.0] * 16 + [2.0] * 16

    def test_divergent_branch_without_reconv_rejected(self):
        kb = KernelBuilder("bad", regs_per_thread=8)
        kb.mov(R(0), SReg(Special.LANE))
        kb.isetp(P(0), "lt", R(0), Imm(16))
        skip = kb.label("skip")
        kb.bra(skip, guard=P(0))  # divergent, no reconv declared
        kb.nop()
        kb.bind(skip)
        kb.exit()
        with pytest.raises(FunctionalError, match="reconvergence"):
            Interpreter().run(Launch(kb.build(), 1, 32))
