"""Shared test configuration: deterministic, CI-friendly hypothesis."""

from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro",
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")
