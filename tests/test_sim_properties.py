"""Property-style integration tests: randomly generated straight-line
kernels must execute correctly through the functional simulator and satisfy
timing-simulator invariants under every scheme."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import OperandLog, make_scheme
from repro.functional import Interpreter, Launch
from repro.isa import Imm, KernelBuilder, R
from repro.system import GpuSimulator
from repro.vm import AddressSpace, SegmentKind, SparseMemory

SCHEMES = ["baseline", "wd-commit", "wd-lastcheck", "replay-queue"]


def random_kernel(ops, n_threads):
    """A straight-line kernel from a list of (kind, params) descriptors."""
    kb = KernelBuilder("rand", regs_per_thread=24)
    kb.global_thread_id(R(0))
    kb.imad(R(1), R(0), Imm(4), kb.param(0))  # input pointer
    kb.imad(R(2), R(0), Imm(4), kb.param(1))  # output pointer
    kb.mov(R(3), Imm(1.0))
    for kind, a, b in ops:
        if kind == 0:
            kb.fadd(R(4 + a % 4), R(4 + b % 4), R(3))
        elif kind == 1:
            kb.ffma(R(4 + a % 4), R(3), Imm(0.5), R(4 + b % 4))
        elif kind == 2:
            kb.ld_global(R(4 + a % 4), R(1), offset=(b % 8) * 512)
        elif kind == 3:
            kb.st_global(R(2), R(4 + a % 4))
        elif kind == 4:
            kb.iadd(R(1), R(1), Imm((a % 4) * 128 + 4))
    kb.st_global(R(2), R(3))
    kb.exit()
    return kb.build()


@st.composite
def op_lists(draw):
    n = draw(st.integers(min_value=1, max_value=16))
    return [
        (
            draw(st.integers(0, 4)),
            draw(st.integers(0, 7)),
            draw(st.integers(0, 7)),
        )
        for _ in range(n)
    ]


class TestRandomKernels:
    @given(op_lists())
    @settings(max_examples=25, deadline=None)
    def test_functional_then_timing_invariants(self, ops):
        n_threads = 64
        kernel = random_kernel(ops, n_threads)

        aspace = AddressSpace()
        aspace.add_segment("in", 64 * 1024, SegmentKind.INPUT)
        aspace.add_segment("out", n_threads * 4, SegmentKind.OUTPUT)
        params = [aspace.segment("in").base, aspace.segment("out").base]

        memory = SparseMemory()
        launch = Launch(kernel, grid_dim=2, block_dim=32, params=params)
        trace = Interpreter(memory=memory).run(launch)
        assert trace.dynamic_instructions() > 0

        cycles = {}
        for name in ("baseline", "wd-commit"):
            asp = AddressSpace()
            asp.add_segment("in", 64 * 1024, SegmentKind.INPUT)
            asp.add_segment("out", n_threads * 4, SegmentKind.OUTPUT)
            sim = GpuSimulator(
                kernel, trace, asp, scheme=make_scheme(name),
                paging="premapped",
            )
            res = sim.run()
            # every issued instruction commits; all blocks complete
            issued = sum(s.issued for s in res.sm_stats)
            committed = sum(s.committed for s in res.sm_stats)
            assert issued == committed == trace.dynamic_instructions()
            assert sum(s.blocks_completed for s in res.sm_stats) == 2
            # pending-fault slots fully drained
            for sm in sim.sms:
                assert sm.pending_faults == 0
            cycles[name] = res.cycles

        # wd-commit can never beat the baseline by more than noise
        assert cycles["wd-commit"] >= cycles["baseline"] * 0.98

    @given(op_lists())
    @settings(max_examples=10, deadline=None)
    def test_operand_log_leaves_no_residue(self, ops):
        kernel = random_kernel(ops, 64)
        aspace = AddressSpace()
        aspace.add_segment("in", 64 * 1024, SegmentKind.INPUT)
        aspace.add_segment("out", 64 * 4, SegmentKind.OUTPUT)
        params = [aspace.segment("in").base, aspace.segment("out").base]
        trace = Interpreter(memory=SparseMemory()).run(
            Launch(kernel, grid_dim=2, block_dim=32, params=params)
        )
        asp2 = AddressSpace()
        asp2.add_segment("in", 64 * 1024, SegmentKind.INPUT)
        asp2.add_segment("out", 64 * 4, SegmentKind.OUTPUT)
        sim = GpuSimulator(
            kernel, trace, asp2, scheme=OperandLog(8), paging="premapped"
        )
        sim.run()
        sim.events.drain()
        # log accounting must return to zero on every block ever resident
        # (blocks are removed at completion, so check via the scheme's
        # bookkeeping invariants on any remaining state)
        for sm in sim.sms:
            assert not sm.blocks and not sm.offchip
