"""Fault controller tests: classification routing, 64KB-granule dedup,
queue positions, CPU/link queueing math, local handling, invalid access."""

import pytest

from repro.system import (
    GPUConfig,
    InterconnectConfig,
    InvalidAccessError,
    NVLINK,
    PCIE,
    US,
)
from repro.system.faults import FaultController
from repro.vm import (
    FAULT_GRANULARITY_PAGES,
    FaultClass,
    FrameAllocator,
    Owner,
    SystemPageState,
)

PAGES = FAULT_GRANULARITY_PAGES


def make_controller(local=False, interconnect=NVLINK, config=None):
    config = config or GPUConfig()
    state = SystemPageState()
    # group 0: CPU-dirty input;  group 1: CPU-clean;  group 2: untouched
    state.register_range(0, PAGES * 4096, Owner.CPU, cpu_dirty=True)
    state.register_range(PAGES * 4096, PAGES * 4096, Owner.CPU, cpu_dirty=False)
    state.register_range(2 * PAGES * 4096, PAGES * 4096, Owner.NONE)
    ctl = FaultController(
        config=config,
        interconnect=interconnect,
        page_state=state,
        frame_allocator=FrameAllocator(4096),
        local_handling=local,
    )
    return ctl, state


class TestUnloadedCosts:
    """The resolution of an uncontended fault must match the paper's
    measured constants exactly (Section 5.3)."""

    @pytest.mark.parametrize("ic", [NVLINK, PCIE])
    def test_migrate_cost(self, ic):
        ctl, _ = make_controller(interconnect=ic)
        outcome = ctl.on_fault(vpn=0, detect_time=0.0, sm_id=0)
        assert outcome.fault_class is FaultClass.MIGRATE
        assert outcome.resolved_time == pytest.approx(ic.migrate_cost)

    @pytest.mark.parametrize("ic", [NVLINK, PCIE])
    def test_alloc_cost(self, ic):
        ctl, _ = make_controller(interconnect=ic)
        outcome = ctl.on_fault(vpn=PAGES, detect_time=0.0, sm_id=0)
        assert outcome.fault_class is FaultClass.ALLOC_ONLY
        assert outcome.resolved_time == pytest.approx(ic.alloc_cost)

    def test_paper_constants(self):
        assert NVLINK.migrate_cost == 12 * US
        assert NVLINK.alloc_cost == 10 * US
        assert PCIE.migrate_cost == 25 * US
        assert PCIE.alloc_cost == 12 * US

    def test_scaled_preserves_ratios(self):
        scaled = PCIE.scaled(8.0)
        assert scaled.migrate_cost == PCIE.migrate_cost / 8
        assert scaled.transfer_time == pytest.approx(PCIE.transfer_time / 8)


class TestGranularity:
    def test_whole_group_installed(self):
        ctl, state = make_controller()
        ctl.on_fault(vpn=3, detect_time=0.0, sm_id=0)
        for page in range(PAGES):
            assert state.gpu_translate(page) is not None

    def test_second_fault_same_group_joins(self):
        ctl, _ = make_controller()
        first = ctl.on_fault(vpn=0, detect_time=0.0, sm_id=0)
        second = ctl.on_fault(vpn=5, detect_time=10.0, sm_id=1)
        assert second.resolved_time == first.resolved_time
        assert ctl.stats.groups_resolved == 1
        assert ctl.stats.faults_raised == 2

    def test_different_groups_resolve_separately(self):
        ctl, _ = make_controller()
        a = ctl.on_fault(vpn=0, detect_time=0.0, sm_id=0)
        b = ctl.on_fault(vpn=PAGES, detect_time=0.0, sm_id=0)
        assert b.resolved_time > a.resolved_time  # CPU handler serializes
        assert ctl.stats.groups_resolved == 2


class TestQueueing:
    def test_cpu_handler_serializes(self):
        ctl, state = make_controller()
        # three allocation-only groups (CPU-clean pages)
        state.register_range(
            3 * PAGES * 4096, 2 * PAGES * 4096, Owner.CPU, cpu_dirty=False
        )
        times = [
            ctl.on_fault(vpn=g * PAGES, detect_time=0.0, sm_id=0).resolved_time
            for g in (1, 3, 4)
        ]
        gaps = [b - a for a, b in zip(times, times[1:])]
        # concurrent allocation faults drain at the CPU handler's rate
        for gap in gaps:
            assert gap == pytest.approx(NVLINK.cpu_service)

    def test_positions_reflect_pending_queue(self):
        ctl, _ = make_controller()
        first = ctl.on_fault(vpn=0, detect_time=0.0, sm_id=0)
        second = ctl.on_fault(vpn=PAGES, detect_time=1.0, sm_id=0)
        third = ctl.on_fault(vpn=2 * PAGES, detect_time=2.0, sm_id=0)
        assert first.position == 0
        assert second.position == 1
        assert third.position == 2

    def test_position_drops_after_resolution(self):
        ctl, _ = make_controller()
        first = ctl.on_fault(vpn=0, detect_time=0.0, sm_id=0)
        late = ctl.on_fault(
            vpn=PAGES, detect_time=first.resolved_time + 1, sm_id=0
        )
        assert late.position == 0


class TestTimeAwareTranslate:
    def test_pending_group_stays_unmapped_until_resolution(self):
        ctl, state = make_controller()
        outcome = ctl.on_fault(vpn=0, detect_time=0.0, sm_id=0)
        assert state.gpu_translate(0) is not None  # installed structurally
        assert ctl.translate(0, time=outcome.resolved_time - 1) is None
        assert ctl.translate(0, time=outcome.resolved_time + 1) is not None

    def test_never_faulted_mapped_page_translates(self):
        ctl, state = make_controller()
        state.install_gpu_page(PAGES * 2, ppn=99)
        assert ctl.translate(PAGES * 2, time=0.0) == 99

    def test_unmapped_translates_to_none(self):
        ctl, _ = make_controller()
        assert ctl.translate(0, time=0.0) is None


class TestLocalHandling:
    def test_first_touch_handled_locally(self):
        ctl, _ = make_controller(local=True)
        outcome = ctl.on_fault(vpn=2 * PAGES, detect_time=0.0, sm_id=3)
        assert outcome.handled_locally
        assert outcome.resolved_time == pytest.approx(
            GPUConfig().gpu_handler_latency
        )
        assert ctl.stats.handled_locally == 1

    def test_migration_still_goes_to_cpu(self):
        ctl, _ = make_controller(local=True)
        outcome = ctl.on_fault(vpn=0, detect_time=0.0, sm_id=3)
        assert not outcome.handled_locally
        assert ctl.stats.handled_by_cpu == 1

    def test_local_handlers_concurrent_across_sms(self):
        config = GPUConfig()
        ctl, _ = make_controller(local=True, config=config)
        a = ctl.on_fault(vpn=2 * PAGES, detect_time=0.0, sm_id=0)
        # a second first-touch group (register more range first)
        ctl.page_state.register_range(
            3 * PAGES * 4096, PAGES * 4096, Owner.NONE
        )
        b = ctl.on_fault(vpn=3 * PAGES, detect_time=0.0, sm_id=1)
        # different SMs: no serialization beyond the handler latency
        assert b.resolved_time == pytest.approx(a.resolved_time)

    def test_same_sm_serial_section(self):
        config = GPUConfig()
        ctl, _ = make_controller(local=True, config=config)
        ctl.page_state.register_range(
            3 * PAGES * 4096, PAGES * 4096, Owner.NONE
        )
        a = ctl.on_fault(vpn=2 * PAGES, detect_time=0.0, sm_id=0)
        b = ctl.on_fault(vpn=3 * PAGES, detect_time=0.0, sm_id=0)
        assert b.resolved_time == pytest.approx(
            a.resolved_time + config.gpu_handler_serial
        )

    def test_frame_partitioning(self):
        ctl, state = make_controller(local=True)
        ctl.on_fault(vpn=2 * PAGES, detect_time=0.0, sm_id=5)  # local alloc
        ctl.on_fault(vpn=0, detect_time=0.0, sm_id=5)  # CPU alloc
        local_ppn = state.gpu_translate(2 * PAGES)
        cpu_ppn = state.gpu_translate(0)
        # CPU slice comes first in the partition, SM slices after
        assert local_ppn > cpu_ppn


class TestInvalidAccess:
    def test_invalid_address_aborts(self):
        ctl, _ = make_controller()
        with pytest.raises(InvalidAccessError):
            ctl.on_fault(vpn=10_000_000, detect_time=0.0, sm_id=0)

    def test_invalid_access_leaves_state_intact(self):
        """An aborted access must not half-resolve: no group recorded, no
        frames allocated, no pending-queue entry."""
        ctl, state = make_controller()
        before = ctl.cpu_frames.free_frames
        with pytest.raises(InvalidAccessError):
            ctl.on_fault(vpn=10_000_000, detect_time=0.0, sm_id=0)
        assert ctl.stats.groups_resolved == 0
        assert ctl.stats.faults_raised == 1  # routed, then aborted
        assert ctl.cpu_frames.free_frames == before
        assert ctl.pending_groups(0.0) == []
        # the controller still works for valid faults afterwards
        outcome = ctl.on_fault(vpn=0, detect_time=0.0, sm_id=0)
        assert outcome.resolved_time > 0.0


class TestJoinTelemetry:
    """The dedup-join path (a fault joining an in-flight resolution) is
    observable: a ``fault.join`` event and the ``joined_pending`` stat."""

    def _traced_controller(self):
        from repro.telemetry import Telemetry

        config = GPUConfig()
        state = SystemPageState()
        state.register_range(0, PAGES * 4096, Owner.CPU, cpu_dirty=True)
        tel = Telemetry()
        ctl = FaultController(
            config=config,
            interconnect=NVLINK,
            page_state=state,
            frame_allocator=FrameAllocator(4096),
            telemetry=tel,
        )
        return ctl, tel

    def test_join_emits_event_and_stat(self):
        from repro.telemetry.events import EV_FAULT_JOIN

        ctl, tel = self._traced_controller()
        first = ctl.on_fault(vpn=0, detect_time=0.0, sm_id=0)
        joined = ctl.on_fault(vpn=5, detect_time=10.0, sm_id=1)
        assert joined.resolved_time == first.resolved_time
        assert ctl.stats.joined_pending == 1
        events = [rec for rec in tel.tracer.events()
                  if rec[0] == EV_FAULT_JOIN]
        assert len(events) == 1
        args = events[0][5]
        assert args["vpn"] == 5
        assert args["group"] == 0
        assert args["sm"] == 1
        assert args["resolved_time"] == first.resolved_time

    def test_no_join_event_for_distinct_groups(self):
        from repro.telemetry.events import EV_FAULT_JOIN

        ctl, tel = self._traced_controller()
        ctl.page_state.register_range(
            PAGES * 4096, PAGES * 4096, Owner.CPU, cpu_dirty=True
        )
        ctl.on_fault(vpn=0, detect_time=0.0, sm_id=0)
        ctl.on_fault(vpn=PAGES, detect_time=1.0, sm_id=0)
        assert ctl.stats.joined_pending == 0
        assert tel.tracer.count(EV_FAULT_JOIN) == 0

    def test_fault_past_resolution_does_not_join(self):
        ctl, _ = self._traced_controller()
        first = ctl.on_fault(vpn=0, detect_time=0.0, sm_id=0)
        again = ctl.on_fault(
            vpn=0, detect_time=first.resolved_time + 1.0, sm_id=0
        )
        # raced re-fault after resolution: a fresh (alloc-only) resolution
        assert ctl.stats.joined_pending == 0
        assert again.resolved_time > first.resolved_time


class TestPendingQueuePruning:
    """``_position`` prunes resolved groups lazily from the unresolved
    map, so the pending queue cannot grow without bound."""

    def test_lazy_pruning_drops_resolved_groups(self):
        ctl, state = make_controller()
        state.register_range(
            3 * PAGES * 4096, 3 * PAGES * 4096, Owner.CPU, cpu_dirty=False
        )
        outcomes = [
            ctl.on_fault(vpn=g * PAGES, detect_time=0.0, sm_id=0)
            for g in (0, 1, 3, 4)
        ]
        assert len(ctl._unresolved) == 4
        last = max(o.resolved_time for o in outcomes)
        # a query after everything resolved prunes the whole map
        assert ctl._position(last + 1.0) == 0
        assert ctl._unresolved == {}

    def test_pruning_keeps_still_pending_groups(self):
        ctl, state = make_controller()
        state.register_range(
            3 * PAGES * 4096, PAGES * 4096, Owner.CPU, cpu_dirty=False
        )
        a = ctl.on_fault(vpn=0, detect_time=0.0, sm_id=0)
        b = ctl.on_fault(vpn=3 * PAGES, detect_time=0.0, sm_id=0)
        mid = (min(a.resolved_time, b.resolved_time)
               + max(a.resolved_time, b.resolved_time)) / 2
        assert ctl._position(mid) == 1
        assert len(ctl._unresolved) == 1
        assert ctl.pending_groups(mid) == [3]


class TestInterconnectBudget:
    def test_signal_latency_positive(self):
        for ic in (NVLINK, PCIE):
            assert ic.signal_latency > 0
            assert ic.transfer_time > 0

    def test_invalid_time_scale(self):
        with pytest.raises(ValueError):
            NVLINK.scaled(0)
