"""Tests for the paper's extension features: arithmetic-exception coverage
(Sections 3.1/3.2) and the preemption-latency analysis (Section 2.4)."""

import pytest

from repro.core import (
    ReplayQueue,
    WarpDisableCommit,
    WarpDisableLastCheck,
    make_scheme,
)
from repro.core.preemption import (
    measure_preemption_latency,
    preemption_latency_experiment,
)
from repro.functional import Interpreter, Launch
from repro.isa import Imm, KernelBuilder, R
from repro.system import GPUConfig, GpuSimulator, NVLINK
from repro.vm import AddressSpace, SegmentKind, SparseMemory
from repro.workloads import MICRO


def div_heavy_workload():
    """A kernel chained through SFU divides (the divide-by-zero class)."""
    kb = KernelBuilder("divchain", regs_per_thread=16)
    kb.global_thread_id(R(0))
    kb.mov(R(1), Imm(1000.0))
    kb.mov(R(5), Imm(1.0))
    for _ in range(8):
        kb.fdiv(R(1), R(1), Imm(1.5))
        # independent work the barrier (but not the baseline) blocks
        kb.fadd(R(5), R(5), Imm(1.0))
        kb.fmul(R(6), R(5), Imm(2.0))
        kb.fadd(R(7), R(6), Imm(3.0))
    kb.imad(R(3), R(0), Imm(4), kb.param(0))
    kb.st_global(R(3), R(1))
    kb.exit()
    kernel = kb.build()

    def make_aspace():
        asp = AddressSpace()
        asp.add_segment("out", 1 << 16, SegmentKind.OUTPUT)
        return asp

    asp = make_aspace()
    trace = Interpreter(memory=SparseMemory()).run(
        Launch(kernel, 4, 64, params=[asp.segment("out").base])
    )
    return kernel, trace, make_aspace


class TestArithmeticExceptionCoverage:
    def cycles(self, scheme):
        kernel, trace, make_aspace = div_heavy_workload()
        sim = GpuSimulator(kernel, trace, make_aspace(), scheme=scheme)
        return sim.run().cycles

    def test_wd_barrier_on_divides_costs(self):
        plain = self.cycles(WarpDisableCommit())
        covered = self.cycles(WarpDisableCommit(cover_arithmetic=True))
        assert covered > plain  # every divide becomes a warp barrier

    def test_replay_queue_defers_divide_sources(self):
        plain = self.cycles(ReplayQueue())
        covered = self.cycles(ReplayQueue(cover_arithmetic=True))
        # fdiv reads+writes R1 -> the next fdiv WARs on it; deferring the
        # release to execution-complete serializes the chain further
        assert covered >= plain

    def test_lastcheck_variant_also_covers(self):
        plain = self.cycles(WarpDisableLastCheck())
        covered = self.cycles(WarpDisableLastCheck(cover_arithmetic=True))
        assert covered > plain

    def test_memory_only_kernels_unaffected(self):
        wl = MICRO.fresh("saxpy")
        sim = lambda s: GpuSimulator(
            wl.kernel, wl.trace(), wl.make_address_space(), scheme=s
        ).run().cycles
        assert sim(WarpDisableCommit(cover_arithmetic=True)) == sim(
            WarpDisableCommit()
        )

    def test_factory_kwarg(self):
        scheme = make_scheme("replay-queue", cover_arithmetic=True)
        assert scheme.cover_arithmetic


class TestPreemptionLatency:
    def make_sim(self, wl, scheme):
        config = GPUConfig().time_scaled(8.0)
        return GpuSimulator(
            kernel=wl.kernel,
            trace=wl.trace(),
            address_space=wl.make_address_space(),
            config=config,
            scheme=scheme,
            paging="demand",
            interconnect=NVLINK.scaled(8.0),
        )

    def test_stall_on_fault_waits_for_resolutions(self):
        wl = MICRO.fresh("stream-sum")
        sim = self.make_sim(wl, make_scheme("replay-queue"))
        reports = measure_preemption_latency(sim, request_time=100.0)
        pre = reports["preemptible"]
        stall = reports["stall-on-fault"]
        assert stall.worst_latency >= pre.worst_latency
        assert pre.request_time == 100.0

    def test_latency_gap_under_faults(self):
        """With in-flight faults, the non-preemptible policy's context
        switch latency includes the fault round trip (the Section 2.4
        claim)."""
        wl = MICRO.fresh("stream-sum")
        config = GPUConfig().time_scaled(8.0)
        best_gap = 0.0
        for fraction in (0.05, 0.15, 0.3):
            result = preemption_latency_experiment(
                wl, make_scheme("replay-queue"), NVLINK.scaled(8.0), config,
                request_fraction=fraction,
            )
            assert result["stall-on-fault"] >= result["preemptible"]
            best_gap = max(
                best_gap, result["stall-on-fault"] - result["preemptible"]
            )
        # at some point during the run, in-flight faults make the
        # non-preemptible switch wait out a fault round trip
        assert best_gap > NVLINK.scaled(8.0).alloc_cost * 0.3

    def test_context_bytes_reported(self):
        wl = MICRO.fresh("saxpy")
        sim = self.make_sim(wl, make_scheme("replay-queue"))
        reports = measure_preemption_latency(sim, request_time=50.0)
        assert any(b > 0 for b in reports["preemptible"].context_bytes)

    def test_mean_and_worst(self):
        wl = MICRO.fresh("saxpy")
        sim = self.make_sim(wl, make_scheme("replay-queue"))
        rep = measure_preemption_latency(sim, 50.0)["preemptible"]
        assert rep.mean_latency <= rep.worst_latency
