"""Scheme strategy-object tests and the operand-log area/power model."""

import pytest

from repro.core import (
    LOAD_LOG_BYTES,
    STORE_LOG_BYTES,
    BaselineStallOnFault,
    OperandLog,
    PipelineScheme,
    ReplayQueue,
    WarpDisableCommit,
    WarpDisableLastCheck,
    make_scheme,
)
from repro.core.area_power import format_table2, log_area_mm2, log_power_w, overheads


class TestFactory:
    @pytest.mark.parametrize(
        "name,cls",
        [
            ("baseline", BaselineStallOnFault),
            ("wd-commit", WarpDisableCommit),
            ("wd-lastcheck", WarpDisableLastCheck),
            ("replay-queue", ReplayQueue),
            ("operand-log", OperandLog),
        ],
    )
    def test_make_scheme(self, name, cls):
        assert isinstance(make_scheme(name), cls)

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown scheme"):
            make_scheme("rollback-buffer")

    def test_operand_log_kwargs(self):
        scheme = make_scheme("operand-log", log_kbytes=32)
        assert scheme.log_bytes == 32 * 1024
        assert scheme.name == "operand-log-32kb"


class TestSchemeSemantics:
    def test_preemptibility(self):
        assert not BaselineStallOnFault().preemptible
        for cls in (WarpDisableCommit, WarpDisableLastCheck, ReplayQueue):
            assert cls().preemptible
        assert OperandLog(8).preemptible

    def test_disable_anchors(self):
        assert BaselineStallOnFault().disable_anchor is None
        assert WarpDisableCommit().disable_anchor == "commit"
        assert WarpDisableLastCheck().disable_anchor == "lastcheck"
        assert ReplayQueue().disable_anchor is None

    def test_source_release(self):
        assert BaselineStallOnFault().source_release_time(10.0, 99.0) == 10.0
        assert ReplayQueue().source_release_time(10.0, 99.0) == 99.0
        # the log restores baseline early release
        assert OperandLog(8).source_release_time(10.0, 99.0) == 10.0

    def test_log_bytes(self):
        log = OperandLog(8)
        assert log.log_bytes_needed(is_store=False) == LOAD_LOG_BYTES == 256
        assert log.log_bytes_needed(is_store=True) == STORE_LOG_BYTES == 512
        assert ReplayQueue().log_bytes_needed(False) == 0

    def test_log_size_validation(self):
        with pytest.raises(ValueError):
            OperandLog(0)


class TestAreaPowerModel:
    """Table 2 must be reproduced within rounding of the paper."""

    PAPER = {
        8: (1.04, 0.47, 1.82, 1.28),
        16: (1.47, 0.67, 2.34, 1.64),
        20: (1.67, 0.76, 2.61, 1.83),
        32: (2.36, 1.08, 3.38, 2.37),
    }

    @pytest.mark.parametrize("kb", sorted(PAPER))
    def test_matches_paper(self, kb):
        row = overheads(kb)
        sm_a, gpu_a, sm_p, gpu_p = self.PAPER[kb]
        assert row.sm_area_pct == pytest.approx(sm_a, abs=0.05)
        assert row.gpu_area_pct == pytest.approx(gpu_a, abs=0.03)
        assert row.sm_power_pct == pytest.approx(sm_p, abs=0.05)
        assert row.gpu_power_pct == pytest.approx(gpu_p, abs=0.03)

    def test_monotone_in_size(self):
        rows = [overheads(kb) for kb in (8, 16, 20, 32)]
        for a, b in zip(rows, rows[1:]):
            assert b.area_mm2 > a.area_mm2
            assert b.power_w > a.power_w

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            log_area_mm2(0)
        with pytest.raises(ValueError):
            log_power_w(-1)

    def test_format(self):
        text = format_table2()
        assert "8 KB" in text and "GPU Power" in text
