"""Virtual-memory substrate tests: pages, page tables, fault classes,
frame allocation, the device heap and the address space."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.vm import (
    FAULT_GRANULARITY_PAGES,
    PAGE_SIZE,
    AddressSpace,
    DeviceHeap,
    FaultClass,
    FrameAllocator,
    HeapExhausted,
    Owner,
    OutOfPhysicalMemory,
    PageTable,
    SegmentKind,
    SparseMemory,
    SystemPageState,
    cache_line,
    fault_group,
    page_base,
    page_number,
    page_offset,
    pages_in_group,
)


class TestPageHelpers:
    def test_page_number(self):
        assert page_number(0) == 0
        assert page_number(PAGE_SIZE - 1) == 0
        assert page_number(PAGE_SIZE) == 1

    def test_base_and_offset_recompose(self):
        addr = 5 * PAGE_SIZE + 123
        assert page_base(addr) + page_offset(addr) == addr

    def test_fault_group_covers_16_pages(self):
        group = fault_group(0)
        pages = list(pages_in_group(group))
        assert len(pages) == FAULT_GRANULARITY_PAGES
        assert pages[0] == 0 and pages[-1] == 15

    @given(st.integers(min_value=0, max_value=2**48 - 1))
    def test_page_invariants(self, addr):
        assert page_base(addr) <= addr
        assert page_base(addr) % PAGE_SIZE == 0
        assert 0 <= page_offset(addr) < PAGE_SIZE
        assert page_number(addr) in pages_in_group(fault_group(addr))

    @given(st.integers(min_value=0, max_value=2**40))
    def test_cache_line_monotonic(self, addr):
        assert cache_line(addr) <= cache_line(addr + 128)


class TestPageTable:
    def test_map_lookup_unmap(self):
        pt = PageTable()
        pt.map(5, 42)
        assert pt.lookup(5).ppn == 42
        assert pt.is_mapped(5)
        entry = pt.unmap(5)
        assert entry.ppn == 42
        assert not pt.is_mapped(5)

    def test_mark_dirty(self):
        pt = PageTable()
        pt.map(1, 2)
        pt.mark_dirty(1)
        assert pt.lookup(1).dirty
        pt.mark_dirty(99)  # non-existent: no-op


class TestSystemPageState:
    def make(self):
        state = SystemPageState()
        state.register_range(0x1000, 2 * PAGE_SIZE, Owner.CPU, cpu_dirty=True)
        state.register_range(0x10000, PAGE_SIZE, Owner.CPU, cpu_dirty=False)
        state.register_range(0x20000, PAGE_SIZE, Owner.NONE)
        return state

    def test_classification(self):
        state = self.make()
        assert state.classify_fault(page_number(0x1000)) is FaultClass.MIGRATE
        assert state.classify_fault(page_number(0x10000)) is FaultClass.ALLOC_ONLY
        assert state.classify_fault(page_number(0x20000)) is FaultClass.FIRST_TOUCH
        assert state.classify_fault(page_number(0x900000)) is FaultClass.INVALID

    def test_install_transfers_ownership(self):
        state = self.make()
        vpn = page_number(0x1000)
        assert state.owner_of(vpn) is Owner.CPU
        state.install_gpu_page(vpn, ppn=7)
        assert state.owner_of(vpn) is Owner.GPU
        assert state.gpu_translate(vpn) == 7
        assert not state.cpu_table.is_mapped(vpn)
        # a second fault on a GPU-owned page needs no migration
        assert state.classify_fault(vpn) is FaultClass.ALLOC_ONLY

    def test_untranslated_page_returns_none(self):
        state = self.make()
        assert state.gpu_translate(page_number(0x20000)) is None


class TestFrameAllocator:
    def test_allocate_unique(self):
        alloc = FrameAllocator(8)
        frames = [alloc.allocate() for _ in range(8)]
        assert sorted(frames) == list(range(8))
        with pytest.raises(OutOfPhysicalMemory):
            alloc.allocate()

    def test_release_and_reuse(self):
        alloc = FrameAllocator(2)
        f0 = alloc.allocate()
        alloc.allocate()
        alloc.release(f0)
        assert alloc.allocate() == f0

    def test_double_free_rejected(self):
        alloc = FrameAllocator(2)
        f = alloc.allocate()
        alloc.release(f)
        with pytest.raises(ValueError, match="double free"):
            alloc.release(f)

    def test_release_out_of_pool_rejected(self):
        alloc = FrameAllocator(2, first_frame=10)
        with pytest.raises(ValueError):
            alloc.release(5)

    def test_contiguous(self):
        alloc = FrameAllocator(16)
        start = alloc.allocate_contiguous(8)
        assert start == 0
        start2 = alloc.allocate_contiguous(8)
        assert start2 == 8
        with pytest.raises(OutOfPhysicalMemory):
            alloc.allocate_contiguous(1)

    def test_partition_disjoint(self):
        alloc = FrameAllocator(10)
        parts = alloc.partition(3)
        frames = [p.allocate() for p in parts for _ in range(p.num_frames)]
        assert sorted(frames) == list(range(10))

    def test_partition_requires_free_pool(self):
        alloc = FrameAllocator(4)
        alloc.allocate()
        with pytest.raises(ValueError):
            alloc.partition(2)

    @given(st.lists(st.sampled_from(["alloc", "free"]), max_size=60))
    @settings(max_examples=50)
    def test_never_double_allocates(self, ops):
        alloc = FrameAllocator(8)
        live = set()
        for op in ops:
            if op == "alloc":
                try:
                    frame = alloc.allocate()
                except OutOfPhysicalMemory:
                    assert len(live) == 8
                    continue
                assert frame not in live
                live.add(frame)
            elif live:
                frame = live.pop()
                alloc.release(frame)
            assert alloc.free_frames == 8 - len(live)


class TestDeviceHeap:
    def test_allocations_disjoint(self):
        heap = DeviceHeap(base=0, size=1 << 16, num_arenas=2)
        addrs = [heap.malloc(0, 64) for _ in range(16)]
        assert len(set(addrs)) == 16
        for a, b in zip(sorted(addrs), sorted(addrs)[1:]):
            assert b - a >= 64

    def test_arenas_do_not_overlap(self):
        heap = DeviceHeap(base=0, size=1 << 16, num_arenas=4)
        a0 = heap.malloc(0, 64)
        a1 = heap.malloc(1, 64)
        assert abs(a1 - a0) >= (1 << 16) // 4

    def test_free_recycles_same_class(self):
        heap = DeviceHeap(base=0, size=1 << 12, num_arenas=1)
        a = heap.malloc(0, 100)  # class 128
        heap.free(0, a)
        assert heap.malloc(0, 120) == a

    def test_exhaustion(self):
        heap = DeviceHeap(base=0, size=256, num_arenas=1)
        heap.malloc(0, 128)
        heap.malloc(0, 128)
        with pytest.raises(HeapExhausted):
            heap.malloc(0, 128)

    def test_bad_free_rejected(self):
        heap = DeviceHeap(base=0, size=1 << 12, num_arenas=1)
        with pytest.raises(ValueError):
            heap.free(0, 0x1234)

    def test_invalid_size_rejected(self):
        heap = DeviceHeap(base=0, size=1 << 12, num_arenas=1)
        with pytest.raises(ValueError):
            heap.malloc(0, 0)

    def test_large_allocation_rounds_to_pages(self):
        heap = DeviceHeap(base=0, size=1 << 16, num_arenas=1)
        heap.malloc(0, 5000)
        assert heap.bytes_touched() == 8192

    @given(
        st.lists(
            st.tuples(st.integers(0, 3), st.integers(1, 512)), max_size=40
        )
    )
    @settings(max_examples=50)
    def test_live_accounting(self, allocs):
        heap = DeviceHeap(base=0, size=1 << 18, num_arenas=4)
        live = []
        for arena, size in allocs:
            try:
                live.append((arena, heap.malloc(arena, size)))
            except HeapExhausted:
                pass
        for arena, addr in live:
            heap.free(arena, addr)
        assert heap.bytes_live() == 0


class TestAddressSpace:
    def test_layout_deterministic(self):
        def build():
            asp = AddressSpace()
            asp.add_segment("a", 1000, SegmentKind.INPUT)
            asp.add_segment("b", 5000, SegmentKind.OUTPUT)
            return asp

        a1, a2 = build(), build()
        assert a1.segment("a").base == a2.segment("a").base
        assert a1.segment("b").base == a2.segment("b").base

    def test_segments_page_aligned_and_disjoint(self):
        asp = AddressSpace()
        asp.add_segment("a", 100, SegmentKind.INPUT)
        asp.add_segment("b", 100, SegmentKind.INPUT)
        a, b = asp.segment("a"), asp.segment("b")
        assert a.base % PAGE_SIZE == 0
        assert b.base >= a.end

    def test_null_page_unmapped(self):
        asp = AddressSpace()
        asp.add_segment("a", 100, SegmentKind.INPUT)
        assert asp.segment("a").base >= PAGE_SIZE
        assert asp.page_state.classify_fault(0) is FaultClass.INVALID

    def test_kinds_map_to_fault_classes(self):
        asp = AddressSpace()
        asp.add_segment("in", 100, SegmentKind.INPUT)
        asp.add_segment("out", 100, SegmentKind.OUTPUT)
        asp.add_segment("scratch", 100, SegmentKind.SCRATCH)
        asp.add_segment("heap", 100, SegmentKind.HEAP)
        state = asp.page_state
        cls = lambda name: state.classify_fault(
            page_number(asp.segment(name).base)
        )
        assert cls("in") is FaultClass.MIGRATE
        assert cls("out") is FaultClass.FIRST_TOUCH
        assert cls("scratch") is FaultClass.ALLOC_ONLY
        assert cls("heap") is FaultClass.FIRST_TOUCH

    def test_heap_segment_far_from_data(self):
        asp = AddressSpace()
        asp.add_segment("in", 100, SegmentKind.INPUT)
        asp.add_segment("heap", 100, SegmentKind.HEAP)
        assert asp.segment("heap").base >= AddressSpace.HEAP_BASE

    def test_duplicate_name_rejected(self):
        asp = AddressSpace()
        asp.add_segment("x", 100, SegmentKind.INPUT)
        with pytest.raises(ValueError):
            asp.add_segment("x", 100, SegmentKind.INPUT)

    def test_segment_of(self):
        asp = AddressSpace()
        seg = asp.add_segment("x", 100, SegmentKind.INPUT)
        assert asp.segment_of(seg.base + 50) is seg
        assert asp.segment_of(0) is None

    def test_premap_all(self):
        asp = AddressSpace()
        asp.add_segment("in", 3 * PAGE_SIZE, SegmentKind.INPUT)
        asp.add_segment("out", PAGE_SIZE, SegmentKind.OUTPUT)
        frames = FrameAllocator(64)
        asp.premap_all(frames)
        for seg in asp.segments():
            for vpn in seg.pages():
                assert asp.page_state.gpu_translate(vpn) is not None

    def test_premap_kinds_subset(self):
        asp = AddressSpace()
        asp.add_segment("in", PAGE_SIZE, SegmentKind.INPUT)
        asp.add_segment("out", PAGE_SIZE, SegmentKind.OUTPUT)
        frames = FrameAllocator(64)
        asp.premap_kinds(frames, ("input",))
        in_vpn = page_number(asp.segment("in").base)
        out_vpn = page_number(asp.segment("out").base)
        assert asp.page_state.gpu_translate(in_vpn) is not None
        assert asp.page_state.gpu_translate(out_vpn) is None


class TestSparseMemory:
    def test_default_zero(self):
        assert SparseMemory().load(0x1234) == 0

    def test_store_load(self):
        mem = SparseMemory()
        mem.store(0x10, 3.5)
        assert mem.load(0x10) == 3.5

    def test_fill_and_read_array(self):
        mem = SparseMemory()
        mem.fill(0x100, [1, 2, 3], width=4)
        assert mem.read_array(0x100, 3) == [1, 2, 3]

    @pytest.mark.parametrize(
        "op,val,expect_new,expect_old",
        [
            ("add", 5, 15, 10),
            ("max", 5, 10, 10),
            ("min", 5, 5, 10),
            ("exch", 5, 5, 10),
        ],
    )
    def test_atomics(self, op, val, expect_new, expect_old):
        mem = SparseMemory()
        mem.store(0x20, 10)
        old = mem.atomic(0x20, op, val)
        assert old == expect_old
        assert mem.load(0x20) == expect_new

    def test_cas(self):
        mem = SparseMemory()
        mem.store(0x20, 10)
        assert mem.atomic(0x20, "cas", 99, compare=10) == 10
        assert mem.load(0x20) == 99
        assert mem.atomic(0x20, "cas", 5, compare=10) == 99
        assert mem.load(0x20) == 99  # compare failed

    def test_unknown_atomic_rejected(self):
        with pytest.raises(ValueError):
            SparseMemory().atomic(0, "nand", 1)
