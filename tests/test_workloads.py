"""Workload-suite tests: every benchmark builds, validates, traces, and the
numerically checkable ones match reference computations."""

import numpy as np
import pytest

from repro.functional import Interpreter
from repro.system import GPUConfig
from repro.vm import SparseMemory
from repro.workloads import (
    HALLOC,
    HALLOC_NAMES,
    MICRO,
    PARBOIL,
    PARBOIL_NAMES,
    get_workload,
)

EXPECTED_PARBOIL = {
    "bfs", "cutcp", "histo", "lbm", "mri-gridding", "mri-q", "sad",
    "sgemm", "spmv", "stencil", "tpacf",
}


class TestRegistries:
    def test_all_eleven_parboil_present(self):
        assert set(PARBOIL_NAMES) == EXPECTED_PARBOIL

    def test_halloc_suite(self):
        assert set(HALLOC_NAMES) == {
            "alloc-cycle", "alloc-write", "grid-points", "quad-tree"
        }

    def test_unknown_workload(self):
        with pytest.raises(KeyError, match="unknown workload"):
            get_workload("linpack")

    def test_get_workload_caches(self):
        assert get_workload("saxpy") is get_workload("saxpy")

    def test_fresh_is_uncached(self):
        assert MICRO.fresh("saxpy") is not MICRO.fresh("saxpy")


@pytest.mark.parametrize("name", sorted(EXPECTED_PARBOIL))
class TestParboilWorkloads:
    def test_kernel_builds_and_validates(self, name):
        wl = get_workload(name)
        wl.kernel.validate()
        assert len(wl.kernel) > 0

    def test_fits_on_sm(self, name):
        wl = get_workload(name)
        occupancy = GPUConfig().blocks_per_sm(wl.kernel, wl.block_dim)
        assert occupancy >= 1

    def test_oversubscribes_gpu(self, name):
        """Paper Section 4.1: kernels launch more blocks than fit."""
        wl = get_workload(name)
        resident = GPUConfig().blocks_per_sm(wl.kernel, wl.block_dim) * 16
        assert wl.grid_dim > resident

    def test_trace_nonempty_with_memory_traffic(self, name):
        wl = get_workload(name)
        trace = wl.trace()
        assert trace.dynamic_instructions() > 1000
        assert trace.global_memory_instructions() > 100

    def test_addresses_inside_segments(self, name):
        wl = get_workload(name)
        aspace = wl.make_address_space()
        valid = wl.trace().touched_pages()
        for vpn in valid:
            assert aspace.page_state.is_valid(vpn), hex(vpn * 4096)


class TestLbmCharacteristics:
    def test_low_occupancy(self):
        wl = get_workload("lbm")
        assert GPUConfig().blocks_per_sm(wl.kernel, wl.block_dim) == 1

    def test_eight_warps_per_sm(self):
        wl = get_workload("lbm")
        assert wl.block_dim // 32 == 8  # one eighth of the 64-warp SM


class TestMriGriddingImbalance:
    def test_two_orders_of_magnitude_block_imbalance(self):
        from repro.workloads.parboil import MriGridding

        wl = get_workload("mri-gridding")
        per_block = [b.dynamic_instructions() for b in wl.trace().blocks]
        assert max(per_block) / min(per_block) > 10


class TestNumericalCorrectness:
    def test_saxpy(self):
        wl = MICRO.fresh("saxpy")
        mem = wl.run_functional()
        aspace = wl.make_address_space()
        n = wl.num_threads
        y = mem.read_array(aspace.segment("y").base, n)
        expect = [wl.alpha * (i % 97) + 1.0 for i in range(n)]
        assert y == pytest.approx(expect)

    def test_stream_sum(self):
        wl = MICRO.fresh("stream-sum")
        mem = wl.run_functional()
        aspace = wl.make_address_space()
        n, iters = wl.num_threads, wl.iters
        out = mem.read_array(aspace.segment("out").base, n)
        data = [float((i * 7) % 13) for i in range(n * iters)]
        expect = [sum(data[i + k * n] for k in range(iters)) for i in range(n)]
        assert out == pytest.approx(expect)

    def test_spmv_against_numpy(self):
        from repro.workloads.parboil import Spmv

        wl = Spmv(grid_dim=4, block_dim=64)
        mem = wl.run_functional()
        aspace = wl.make_address_space()
        n = wl.num_threads
        rowptr = np.array(
            mem.read_array(aspace.segment("rowptr").base, n + 1), dtype=int
        )
        nnz = rowptr[-1]
        colidx = np.array(
            mem.read_array(aspace.segment("colidx").base, nnz), dtype=int
        )
        vals = np.array(mem.read_array(aspace.segment("vals").base, nnz))
        x = np.array(mem.read_array(aspace.segment("x").base, n))
        y = np.array(mem.read_array(aspace.segment("y").base, n))
        for row in range(n):
            lo, hi = rowptr[row], rowptr[row + 1]
            expect = float(vals[lo:hi] @ x[colidx[lo:hi]])
            assert y[row] == pytest.approx(expect, rel=1e-9)

    def test_histo_counts(self):
        from repro.workloads.parboil import Histo

        wl = Histo(grid_dim=4, block_dim=64, iters=2)
        mem = wl.run_functional()
        aspace = wl.make_address_space()
        hist = mem.read_array(
            aspace.segment("hist").base, wl.grid_dim * wl.BINS
        )
        assert sum(hist) == wl.num_threads * wl.iters

    def test_sgemm_accumulates_shared_products(self):
        from repro.workloads.parboil import Sgemm

        wl = Sgemm(grid_dim=2, block_dim=64, tiles=2, inner=2)
        mem = wl.run_functional()
        aspace = wl.make_address_space()
        c = mem.read_array(aspace.segment("C").base, wl.num_threads)
        # A and B are zero-filled -> every product is 0
        assert c == [0.0] * wl.num_threads


@pytest.mark.parametrize("name", sorted(HALLOC_NAMES))
class TestHallocWorkloads:
    def test_traces_generate(self, name):
        wl = HALLOC.fresh(name)
        wl.grid_dim = 8  # shrink for test speed
        trace = wl.trace()
        assert trace.dynamic_instructions() > 0
        # heap pages must be touched (first-touch fault sources)
        heap_base_page = wl.make_address_space().segment("heap").base >> 12
        assert any(p >= heap_base_page for p in trace.touched_pages())

    def test_heap_sized_for_demand(self, name):
        wl = HALLOC.fresh(name)
        wl.grid_dim = 8
        wl.trace()  # must not raise HeapExhausted


class TestGridPointsChains:
    def test_chain_walk_sums_payloads(self):
        from repro.workloads.halloc import GridPoints

        wl = GridPoints(grid_dim=2, block_dim=32, chain=4)
        mem = wl.run_functional()
        aspace = wl.make_address_space()
        out = mem.read_array(aspace.segment("out").base, wl.num_threads)
        assert out == [pytest.approx(0 + 1 + 2 + 3)] * wl.num_threads
