"""Chaos engine tests: deterministic injection, timing-only perturbation,
memory-hierarchy hooks, hypothesis intensity sweeps, watchdog hang
detection, invariant sanitizer checks (docs/ROBUSTNESS.md)."""

from types import SimpleNamespace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaos import (
    ALL_HOOKS,
    ChaosConfig,
    ChaosEngine,
    InvariantSanitizer,
    InvariantViolation,
    SimulationHang,
    Watchdog,
    chaos_active,
)
from repro.core import make_scheme
from repro.harness import architectural_digest, run_chaos_campaign
from repro.system import GpuSimulator
from repro.timing.engine import EventQueue
from repro.vm import Owner, SystemPageState
from repro.workloads import MICRO


def build_sim(wl, scheme="replay-queue", paging="demand", **kw):
    return GpuSimulator(
        kernel=wl.kernel,
        trace=wl.trace(),
        address_space=wl.make_address_space(),
        scheme=make_scheme(scheme),
        paging=paging,
        **kw,
    )


@pytest.fixture(scope="module")
def saxpy():
    return MICRO.fresh("saxpy")


@pytest.fixture(scope="module")
def mshr_storm():
    return MICRO.fresh("mshr-storm")


_BASELINES = {}


def clean_baseline(wl):
    """Clean-run ``(cycles, digest)`` for a workload, computed once per
    module (the reference every chaotic run must architecturally match)."""
    cached = _BASELINES.get(wl.name)
    if cached is None:
        sim = build_sim(wl)
        cycles = sim.run().cycles
        cached = _BASELINES[wl.name] = (cycles, architectural_digest(sim))
    return cached


# ---------------------------------------------------------------------------
# engine
# ---------------------------------------------------------------------------

class TestChaosEngine:
    def _drive(self, engine, n=200):
        out = []
        for i in range(n):
            t = float(i)
            out.append(engine.cpu_latency(100.0, t))
            out.append(engine.link_latency(40.0, t))
            out.append(engine.resolve_delay(t))
            out.append(engine.fault_storm(t))
            out.append(engine.spurious_miss(t, vpn=i))
            out.append(engine.tlb_shootdown(t))
            out.append(engine.squash_replay(t, sm_id=i % 4))
            out.append(engine.mshr_exhaustion(t, cache="l1[0]"))
            out.append(engine.refresh_storm(t))
            out.append(engine.pkt_drop(t))
            out.append(engine.pkt_reorder(t))
            out.append(engine.alloc_failure(t, nbytes=4096))
            out.append(engine.stream_teardown(t, stream=i % 2))
        return out

    def test_same_seed_same_injections(self):
        a = ChaosEngine(seed=42)
        b = ChaosEngine(seed=42)
        assert self._drive(a) == self._drive(b)
        assert a.injections == b.injections

    def test_different_seed_differs(self):
        a = ChaosEngine(seed=1)
        b = ChaosEngine(seed=2)
        assert self._drive(a) != self._drive(b)

    def test_every_hook_fires_under_high_intensity(self):
        engine = ChaosEngine(ChaosConfig(seed=0).scaled(50.0))
        self._drive(engine, n=3000)
        assert set(engine.summary()) == set(ALL_HOOKS)
        assert engine.total_injections == sum(engine.injections.values())

    def test_zero_intensity_disables(self):
        cfg = ChaosConfig().scaled(0.0)
        assert not cfg.enabled
        assert chaos_active(ChaosEngine(cfg)) is None
        assert chaos_active(None) is None
        assert chaos_active(ChaosEngine(seed=1)) is not None

    def test_scaled_clamps_rates(self):
        cfg = ChaosConfig().scaled(1e9)
        assert cfg.storm_rate == 1.0
        assert cfg.cpu_latency_rate == 1.0
        with pytest.raises(ValueError):
            ChaosConfig().scaled(-1)

    def test_seed_override(self):
        engine = ChaosEngine(ChaosConfig(seed=3), seed=9)
        assert engine.config.seed == 9

    def test_injections_emit_telemetry(self):
        from repro.telemetry import Telemetry
        from repro.telemetry.events import EV_CHAOS

        tel = Telemetry()
        engine = ChaosEngine(
            ChaosConfig(seed=0).scaled(50.0), telemetry=tel
        )
        self._drive(engine, n=500)
        assert tel.tracer.count(EV_CHAOS) > 0
        assert tel.counters.value("chaos.total") == engine.total_injections


# ---------------------------------------------------------------------------
# timing-only perturbation (the acceptance property)
# ---------------------------------------------------------------------------

class TestTimingOnlyPerturbation:
    def test_disabled_chaos_is_bit_identical(self, saxpy):
        plain = build_sim(saxpy).run()
        disabled = build_sim(
            saxpy, chaos=ChaosEngine(ChaosConfig().scaled(0.0))
        )
        assert disabled.chaos is None  # normalized away, like telemetry
        assert disabled.run().cycles == plain.cycles

    def test_campaign_bit_reproducible(self, saxpy):
        a = run_chaos_campaign(
            "saxpy", seed=7, schemes=("replay-queue",), intensity=10.0
        )
        b = run_chaos_campaign(
            "saxpy", seed=7, schemes=("replay-queue",), intensity=10.0
        )
        assert a.to_dict() == b.to_dict()

    def test_architectural_state_matches_for_all_schemes(self, saxpy):
        table = run_chaos_campaign(
            "saxpy",
            seed=3,
            schemes=("wd-commit", "replay-queue", "operand-log"),
            intensity=25.0,
        )
        match_idx = table.columns.index("state-match")
        inject_idx = table.columns.index("injections")
        for scheme, row in table.rows.items():
            assert row[match_idx] == 1.0, f"{scheme} diverged under chaos"
        assert sum(row[inject_idx] for row in table.rows.values()) > 0

    def test_digest_reflects_final_mappings(self, saxpy):
        sim = build_sim(saxpy)
        sim.run()
        vpns, blocks, committed = architectural_digest(sim)
        assert blocks == saxpy.grid_dim
        assert committed > 0
        assert list(vpns) == sorted(vpns)
        assert len(vpns) > 0


# ---------------------------------------------------------------------------
# memory-hierarchy hooks (MSHR exhaustion, DRAM refresh storms)
# ---------------------------------------------------------------------------

#: only the cache/DRAM hooks enabled, at rates that fire on a small run
MEM_ONLY_CFG = ChaosConfig(
    cpu_latency_rate=0.0,
    link_latency_rate=0.0,
    resolve_delay_rate=0.0,
    storm_rate=0.0,
    tlb_miss_rate=0.0,
    shootdown_rate=0.0,
    squash_rate=0.0,
    mshr_exhaustion_rate=0.05,
    refresh_storm_rate=0.02,
)


class TestMemoryHierarchyHooks:
    def test_hooks_registered(self):
        assert "cache.mshr_exhaustion" in ALL_HOOKS
        assert "dram.refresh_storm" in ALL_HOOKS

    def test_hooks_fire_and_state_matches(self, mshr_storm):
        clean_cycles, clean_digest = clean_baseline(mshr_storm)
        engine = ChaosEngine(MEM_ONLY_CFG, seed=4)
        sim = build_sim(mshr_storm, chaos=engine, sanitize=True)
        result = sim.run()
        assert engine.injections["cache.mshr_exhaustion"] > 0
        assert engine.injections["dram.refresh_storm"] > 0
        # the hooks only ever delay, so they can't speed the run up —
        # and must not change what the run computed
        assert result.cycles >= clean_cycles
        assert architectural_digest(sim) == clean_digest

    def test_hooks_emit_inject_events(self):
        from repro.telemetry import Telemetry
        from repro.telemetry.events import EV_CHAOS

        tel = Telemetry()
        engine = ChaosEngine(MEM_ONLY_CFG, seed=1, telemetry=tel)
        for i in range(500):
            engine.mshr_exhaustion(float(i), cache="l2")
            engine.refresh_storm(float(i))
        assert tel.tracer.count(EV_CHAOS) == engine.total_injections > 0
        assert (
            tel.counters.value("chaos.cache.mshr_exhaustion")
            == engine.injections["cache.mshr_exhaustion"]
        )

    def test_mshr_stall_takes_future_service_path(self):
        """An injected exhaustion must charge the unloaded downstream
        latency (the future-service path), not book shared resources."""
        from repro.mem.cache import Cache

        always = ChaosConfig(mshr_exhaustion_rate=1.0,
                             mshr_stall_max_cycles=100.0)
        cache = Cache("l1", size_bytes=1024, assoc=2, line_size=64,
                      latency=4, num_mshrs=8, next_level_unloaded=50.0)
        cache.attach_chaos(ChaosEngine(always, seed=0))
        calls = []
        ready = cache.access(
            0, 10.0, False, lambda t, line, st: calls.append(line) or t + 1
        )
        assert not calls  # stalled miss never touched the next level
        assert ready > 10.0 + cache.latency + cache.next_level_unloaded
        assert cache.stats.mshr_stalls == 1


# ---------------------------------------------------------------------------
# hypothesis intensity sweeps (ROADMAP chaos follow-up)
# ---------------------------------------------------------------------------

class TestIntensitySweepProperties:
    """Property tests along the intensity axis: zero intensity must be
    bit-identical to an uninjected run; any intensity must leave the run
    sanitizer-clean with the identical architectural state."""

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 2**16))
    def test_zero_intensity_bit_identical(self, saxpy, seed):
        clean_cycles, _ = clean_baseline(saxpy)
        engine = ChaosEngine(ChaosConfig(seed=seed).scaled(0.0))
        sim = build_sim(saxpy, chaos=engine)
        assert sim.chaos is None  # normalized away regardless of seed
        assert sim.run().cycles == clean_cycles

    @settings(max_examples=8, deadline=None)
    @given(
        seed=st.integers(0, 2**16),
        intensity=st.floats(0.0, 40.0, allow_nan=False),
    )
    def test_any_intensity_sanitizer_clean_state(self, saxpy, seed,
                                                 intensity):
        _, clean_digest = clean_baseline(saxpy)
        engine = ChaosEngine(ChaosConfig(seed=seed).scaled(intensity))
        sim = build_sim(
            saxpy, chaos=engine, watchdog=Watchdog(), sanitize=True
        )
        sim.run()
        assert sim.sanitizer.checks_run > 0
        assert sim.watchdog.trips == 0
        assert architectural_digest(sim) == clean_digest


# ---------------------------------------------------------------------------
# watchdog
# ---------------------------------------------------------------------------

class TestWatchdog:
    def test_observe_semantics(self):
        wd = Watchdog(cycle_budget=100.0)
        assert wd.observe((5, 0))
        assert wd.observe((5, 10))  # progress
        assert not wd.observe((5, 10))  # none
        assert wd.trips == 1
        wd.reset()
        assert wd.observe((5, 10))

    def test_bad_budget_rejected(self):
        with pytest.raises(ValueError):
            Watchdog(cycle_budget=0)

    def test_artificial_hang_caught_within_budget(self, saxpy):
        """Wedged SMs (awake, never issuing) plus a self-rescheduling
        stuck event: progress-blind loops like this must trip the
        watchdog within its cycle budget, not spin to max_cycles."""
        budget = 5_000.0
        sim = build_sim(saxpy, watchdog=Watchdog(budget))
        # a fault raised before the run wedges: its group stays pending
        page_state = sim.address_space.page_state
        vpn = next(iter(dict(page_state.cpu_table.items())))
        sim.fault_ctl.on_fault(vpn=vpn, detect_time=0.0, sm_id=0)
        for sm in sim.sms:
            sm.try_issue = lambda cycle: 0  # awake but never issues
        def stuck(t):
            sim.events.schedule(t + 50.0, stuck)
        sim.events.schedule(0.0, stuck)

        with pytest.raises(SimulationHang) as exc_info:
            sim.run(max_cycles=100 * budget)
        diag = exc_info.value.diagnostic
        assert diag.cycle <= 2 * budget  # caught within the budget window
        assert diag.cycle_budget == budget
        assert diag.blocks_remaining == saxpy.grid_dim
        assert diag.committed == 0
        assert diag.pending_fault_groups  # the pre-raised fault group
        assert diag.event_heap_depth > 0  # the stuck event keeps pending
        assert set(diag.warp_states) == {
            f"sm{sm.sm_id}" for sm in sim.sms
        }
        some_sm = next(iter(diag.warp_states.values()))
        assert {"warp", "idx", "inflight", "fetch_holds"} <= set(
            some_sm[0]
        )
        rendered = str(exc_info.value)
        assert "no forward progress" in rendered
        assert "pending fault groups" in rendered

    def test_healthy_run_never_trips(self, saxpy):
        sim = build_sim(saxpy, watchdog=Watchdog(5_000.0))
        result = sim.run()
        assert result.cycles > 0
        assert sim.watchdog.trips == 0


# ---------------------------------------------------------------------------
# invariant sanitizer
# ---------------------------------------------------------------------------

def _clean_block():
    warp = SimpleNamespace(
        slot=0, pw={}, pr={}, pwp={}, prp={}, inflight=0, replay_list=[]
    )
    return SimpleNamespace(
        block_id=1,
        warps=[warp],
        log_used=0,
        faulted_inflight=[],
        pending_groups={},
        unresolved_at=lambda time: False,
    )


class TestSanitizer:
    def test_clean_retirement_passes(self):
        san = InvariantSanitizer()
        san.check_block_retirement(
            SimpleNamespace(sm_id=0), _clean_block(), 100.0
        )
        assert san.checks_run == 1

    @pytest.mark.parametrize(
        "corrupt,needle",
        [
            (lambda b: b.warps[0].pw.update({5: 1}), "scoreboard"),
            (lambda b: setattr(b.warps[0], "inflight", 2), "in-flight"),
            (lambda b: b.warps[0].replay_list.append(object()),
             "unreplayed"),
            (lambda b: setattr(b, "log_used", 64), "operand log"),
            (lambda b: setattr(b, "unresolved_at", lambda t: True),
             "fault groups"),
        ],
    )
    def test_leaks_detected(self, corrupt, needle):
        san = InvariantSanitizer()
        block = _clean_block()
        block.pending_groups = {7: 999.0}
        corrupt(block)
        with pytest.raises(InvariantViolation) as exc_info:
            san.check_block_retirement(
                SimpleNamespace(sm_id=3), block, 100.0
            )
        assert needle in str(exc_info.value)
        assert exc_info.value.details["sm"] == 3

    def test_fired_faulted_record_tolerated(self):
        """At a faulted instruction's completion time the commit event
        fires before the forget event (FIFO tie-break), so a just-fired
        record may still sit in faulted_inflight at retirement."""
        san = InvariantSanitizer()
        block = _clean_block()
        fired_ev = SimpleNamespace(fired=True, cancelled=False)
        block.faulted_inflight = [(None, None, fired_ev)]
        san.check_block_retirement(SimpleNamespace(sm_id=0), block, 10.0)
        live_ev = SimpleNamespace(fired=False, cancelled=False)
        block.faulted_inflight = [(None, None, live_ev)]
        with pytest.raises(InvariantViolation):
            san.check_block_retirement(SimpleNamespace(sm_id=0), block, 10.0)

    def test_frame_double_allocation_detected(self):
        san = InvariantSanitizer()
        state = SystemPageState()
        state.register_range(0, 8 * 4096, Owner.NONE)
        state.install_gpu_page(0, ppn=10)
        state.install_gpu_page(1, ppn=11)
        san.check_frames(state)  # distinct frames: fine
        state.install_gpu_page(2, ppn=10)  # same frame twice
        with pytest.raises(InvariantViolation) as exc_info:
            san.check_frames(state)
        assert exc_info.value.details["ppn"] == 10

    def test_heap_time_regression_detected(self):
        events = EventQueue()
        events.attach_sanitizer(InvariantSanitizer())
        events.schedule(10.0, lambda t: None)
        events.run_until(10.0)
        with pytest.raises(InvariantViolation, match="time regression"):
            events.schedule(5.0, lambda t: None)

    def test_heap_storm_detected(self):
        events = EventQueue()
        san = InvariantSanitizer()
        san.max_events_per_advance = 100
        events.attach_sanitizer(san)

        def stuck(t):
            events.schedule(t, stuck)  # same-timestamp livelock

        events.schedule(1.0, stuck)
        with pytest.raises(InvariantViolation, match="event storm"):
            events.run_until(1.0)

    def test_sanitized_queue_matches_unsanitized(self):
        order_a, order_b = [], []
        plain, checked = EventQueue(), EventQueue()
        checked.attach_sanitizer(InvariantSanitizer())
        for q, order in ((plain, order_a), (checked, order_b)):
            for t in (3.0, 1.0, 2.0, 1.0):
                q.schedule(t, lambda tt, o=order: o.append(tt))
            q.run_until(5.0)
        assert order_a == order_b == [1.0, 1.0, 2.0, 3.0]
        assert plain.processed == checked.processed == 4

    def test_sanitized_full_run_is_bit_identical(self, saxpy):
        plain = build_sim(saxpy).run()
        checked_sim = build_sim(saxpy, sanitize=True)
        checked = checked_sim.run()
        assert checked.cycles == plain.cycles
        assert checked_sim.sanitizer.checks_run > 0


class TestInterconnectHooks:
    """The icnt.pkt_drop / icnt.pkt_reorder hooks (docs/ROBUSTNESS.md)."""

    def test_registered_in_all_hooks(self):
        assert "icnt.pkt_drop" in ALL_HOOKS
        assert "icnt.pkt_reorder" in ALL_HOOKS

    def test_pkt_drop_fires_and_counts(self):
        engine = ChaosEngine(ChaosConfig(seed=0, pkt_drop_rate=1.0,
                                         pkt_drop_max_retx=3))
        retx = [engine.pkt_drop(float(t)) for t in range(50)]
        assert all(1 <= r <= 3 for r in retx)
        assert engine.injections["icnt.pkt_drop"] == 50

    def test_pkt_reorder_fires_and_counts(self):
        engine = ChaosEngine(ChaosConfig(seed=0, pkt_reorder_rate=1.0,
                                         pkt_reorder_max_slots=2))
        slots = [engine.pkt_reorder(float(t)) for t in range(50)]
        assert all(1 <= s <= 2 for s in slots)
        assert engine.injections["icnt.pkt_reorder"] == 50

    def test_zero_rate_never_fires(self):
        engine = ChaosEngine(ChaosConfig(seed=0, pkt_drop_rate=0.0,
                                         pkt_reorder_rate=0.0))
        assert all(engine.pkt_drop(float(t)) == 0 for t in range(50))
        assert all(engine.pkt_reorder(float(t)) == 0 for t in range(50))
        assert engine.total_injections == 0

    def test_perturb_timing_only_in_campaign(self):
        # drive a full run with ONLY the interconnect hooks armed:
        # state-match must hold and the chaotic run must actually differ
        zeroed = {
            name: 0.0
            for name in vars(ChaosConfig())
            if name.endswith("_rate")
        }
        cfg = ChaosConfig(
            seed=0,
            **{**zeroed, "pkt_drop_rate": 1.0, "pkt_reorder_rate": 1.0},
        )
        wl = MICRO.fresh("tlb-thrash")
        base_sim = build_sim(wl)
        base = base_sim.run()
        chaotic_sim = build_sim(
            MICRO.fresh("tlb-thrash"), chaos=ChaosEngine(cfg),
            watchdog=Watchdog(), sanitize=True,
        )
        chaotic = chaotic_sim.run()
        assert chaotic_sim.chaos.total_injections > 0
        assert chaotic.cycles > base.cycles
        assert architectural_digest(base_sim) == architectural_digest(
            chaotic_sim
        )


class TestStreamChaosCampaign:
    """Multi-kernel stream runs in the chaos soak matrix."""

    def test_state_match_under_both_policies(self):
        from repro.harness import run_stream_chaos_campaign

        for policy in ("partition", "interleave"):
            table = run_stream_chaos_campaign(
                "contention", seed=0, policy=policy,
                schemes=("replay-queue",),
            )
            row = table.rows["replay-queue"]
            assert row[-1] == 1.0  # state-match
            assert row[3] > 0  # injections fired

    def test_build_chaos_cells_stream_axis(self):
        from repro.harness import build_chaos_cells
        from repro.harness.chaos_campaign import run_stream_chaos_campaign

        cells = build_chaos_cells(
            ["saxpy"], seeds=[0, 1],
            stream_policies=("partition", "interleave"),
        )
        keys = [c.key for c in cells]
        assert "chaos/saxpy/s0" in keys
        assert "chaos/streams-contention/partition/s0" in keys
        assert "chaos/streams-contention/interleave/s1" in keys
        assert "chaos/streams-mixed/partition/s1" in keys
        stream_cells = [c for c in cells if "streams-" in c.key]
        assert all(c.fn is run_stream_chaos_campaign
                   for c in stream_cells)
        assert all(c.group == "chaos" for c in cells)

    def test_no_stream_policies_no_stream_cells(self):
        from repro.harness import build_chaos_cells

        cells = build_chaos_cells(["saxpy"], seeds=[0])
        assert [c.key for c in cells] == ["chaos/saxpy/s0"]
