"""Backend selection in the campaign runner (docs/VECTORIZATION.md).

Pins the dispatch contract: the default stays scalar; under
``backend="vectorized"`` eligible sweep cells take the fast path and
everything else degrades to the scalar engine with a logged reason —
and in every case the merged campaign output is bit-identical to a
scalar-backend run.
"""

import argparse

import pytest

from repro.batch import build_sweep_cells
from repro.harness.results import ExperimentTable
from repro.harness.runner import CampaignCell, CampaignRunner


# ---------------------------------------------------------------------------
# module-level cell functions (they cross the runner's process boundary)
# ---------------------------------------------------------------------------

def _plain_cell(tag="row", value=1.0):
    table = ExperimentTable(name="plain", description="not a sweep",
                            columns=["v"])
    table.add_row(tag, [value])
    return table


def _sweep_cells(workloads=("saxpy",), chaos=False,
                 schemes=("baseline", "replay-queue")):
    return build_sweep_cells(
        workloads, schemes=schemes, seeds=[0, 1],
        latency_scales=[100], chaos=chaos,
    )


def _run(cells, backend, echo=None):
    runner = CampaignRunner(
        cells, workers=1, keep_going=True, backend=backend,
        echo=echo if echo is not None else (lambda msg: None),
    )
    return runner


class TestDefaults:
    def test_runner_default_is_scalar(self):
        runner = _run(_sweep_cells(), backend="scalar")
        assert runner.backend == "scalar"
        result = runner.run()
        assert result.ok
        snap = runner.counters.snapshot()
        assert snap["harness.campaign.vectorized"] == 0
        assert snap["harness.campaign.fallback"] == 0

    def test_cli_default_is_scalar(self):
        from repro.harness.__main__ import _add_campaign_flags

        parser = argparse.ArgumentParser()
        _add_campaign_flags(parser)
        assert parser.parse_args([]).backend == "scalar"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            CampaignRunner(_sweep_cells(), backend="simd")

    def test_backend_recorded_in_metadata(self):
        runner = _run(_sweep_cells(), backend="vectorized")
        assert runner.counters.metadata["backend"] == "vectorized"


class TestDispatch:
    def test_eligible_cells_take_fast_path(self):
        runner = _run(_sweep_cells(("saxpy", "stream-sum")),
                      backend="vectorized")
        result = runner.run()
        assert result.ok
        snap = runner.counters.snapshot()
        assert snap["harness.campaign.vectorized"] == 2
        assert snap["harness.campaign.fallback"] == 0

    def test_output_bit_identical_across_backends(self):
        scalar = _run(_sweep_cells(), backend="scalar").run()
        vector = _run(_sweep_cells(), backend="vectorized").run()
        assert scalar.ok and vector.ok
        assert scalar.tables.keys() == vector.tables.keys()
        for group in scalar.tables:
            assert (scalar.tables[group].to_dict()
                    == vector.tables[group].to_dict())

    def test_chaos_cells_degrade_with_logged_reason(self):
        lines = []
        runner = _run(_sweep_cells(chaos=True), backend="vectorized",
                      echo=lines.append)
        result = runner.run()
        assert result.ok
        snap = runner.counters.snapshot()
        assert snap["harness.campaign.vectorized"] == 0
        assert snap["harness.campaign.fallback"] == 1
        logged = [ln for ln in lines if "ineligible" in ln]
        assert logged and "chaos hooks enabled" in logged[0]
        assert "sweep/saxpy" in logged[0]

    def test_degraded_chaos_output_matches_scalar(self):
        scalar = _run(_sweep_cells(chaos=True), backend="scalar").run()
        vector = _run(_sweep_cells(chaos=True), backend="vectorized").run()
        for group in scalar.tables:
            assert (scalar.tables[group].to_dict()
                    == vector.tables[group].to_dict())

    def test_non_sweep_cells_degrade(self):
        lines = []
        cells = [CampaignCell(key="plain/one", fn=_plain_cell,
                              kwargs={"tag": "row"}, group="plain")]
        runner = _run(cells, backend="vectorized", echo=lines.append)
        result = runner.run()
        assert result.ok
        snap = runner.counters.snapshot()
        assert snap["harness.campaign.fallback"] == 1
        assert any("not a batch sweep cell" in ln for ln in lines)

    def test_mixed_campaign_routes_per_cell(self):
        """Eligibility is per cell, not per campaign."""
        cells = _sweep_cells() + [
            CampaignCell(key="plain/one", fn=_plain_cell,
                         kwargs={"tag": "row"}, group="plain"),
        ]
        runner = _run(cells, backend="vectorized")
        result = runner.run()
        assert result.ok
        snap = runner.counters.snapshot()
        assert snap["harness.campaign.vectorized"] == 1
        assert snap["harness.campaign.fallback"] == 1
        assert set(result.tables) == {"sweep-saxpy", "plain"}
