"""Final coverage round: the harness CLI, optimization-pass properties,
and runtime-facade edge cases."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.harness.__main__ import main as harness_main
from repro.isa import Imm, KernelBuilder, Opcode, P, R
from repro.opt import (
    Cfg,
    constant_folding,
    count_memory_war_hazards,
    dead_code_elimination,
    rename_war_registers,
)
from repro.runtime import GpuDevice


class TestHarnessCli:
    def test_table1(self, capsys):
        assert harness_main(["table1"]) == 0
        assert "1GHz" in capsys.readouterr().out

    def test_diagrams(self, capsys):
        assert harness_main(["diagrams"]) == 0
        out = capsys.readouterr().out
        assert "Figure 3" in out and "Figure 7" in out

    def test_single_experiment_with_workload(self, capsys):
        assert harness_main(["fig10", "--workloads", "stream-sum"]) == 0
        out = capsys.readouterr().out
        assert "stream-sum" in out and "GEOMEAN" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            harness_main(["fig99"])


def _random_straightline(ops):
    kb = KernelBuilder("p", regs_per_thread=24)
    kb.global_thread_id(R(0))
    kb.imad(R(1), R(0), Imm(4), Imm(1 << 20))
    for kind, a, b in ops:
        if kind == 0:
            kb.iadd(R(2 + a % 6), R(2 + b % 6), Imm(a))
        elif kind == 1:
            kb.fmul(R(2 + a % 6), R(2 + b % 6), Imm(1.5))
        elif kind == 2:
            kb.iadd(R(2 + a % 6), Imm(a), Imm(b))  # foldable? no: dest reg
        elif kind == 3:
            kb.ld_global(R(2 + a % 6), R(1), offset=(b % 4) * 128)
        else:
            kb.st_global(R(1), R(2 + a % 6))
    kb.st_global(R(1), R(2))
    kb.exit()
    return kb.build()


@st.composite
def op_streams(draw):
    n = draw(st.integers(1, 14))
    return [
        (draw(st.integers(0, 4)), draw(st.integers(0, 9)),
         draw(st.integers(0, 9)))
        for _ in range(n)
    ]


class TestPassProperties:
    @given(op_streams())
    @settings(max_examples=30)
    def test_dce_idempotent_and_valid(self, ops):
        kernel = _random_straightline(ops)
        once, removed1 = dead_code_elimination(kernel)
        twice, removed2 = dead_code_elimination(once)
        assert removed2 == 0  # fixed point reached
        once.validate()

    @given(op_streams())
    @settings(max_examples=30)
    def test_folding_never_grows_kernel(self, ops):
        kernel = _random_straightline(ops)
        folded, count = constant_folding(kernel)
        assert len(folded) == len(kernel)
        assert count >= 0

    @given(op_streams())
    @settings(max_examples=30)
    def test_renaming_never_increases_hazards(self, ops):
        kernel = _random_straightline(ops)
        before = count_memory_war_hazards(kernel)
        renamed, _ = rename_war_registers(kernel)
        assert count_memory_war_hazards(renamed) <= before

    @given(op_streams())
    @settings(max_examples=30)
    def test_cfg_partitions_all_pcs(self, ops):
        kernel = _random_straightline(ops)
        cfg = Cfg(kernel)
        covered = sorted(pc for b in cfg.blocks for pc in b.pcs())
        assert covered == list(range(len(kernel)))


class TestRuntimeEdges:
    def kernel(self):
        kb = KernelBuilder("w", regs_per_thread=12)
        kb.global_thread_id(R(0))
        kb.imad(R(1), R(0), Imm(4), kb.param(0))
        kb.st_global(R(1), Imm(1.0))
        kb.exit()
        return kb.build()

    def test_named_allocation(self):
        dev = GpuDevice()
        ptr = dev.malloc_managed(64, name="weights")
        assert ptr.name == "weights"
        with pytest.raises(Exception):
            dev.malloc_managed(64, name="weights")  # duplicate

    def test_launch_output_only_kernel(self):
        dev = GpuDevice(time_scale=8.0)
        out = dev.malloc_managed(8 * 64 * 4)
        res = dev.launch(self.kernel(), grid=8, block=64, args=[out])
        assert res.fault_stats.first_touch > 0
        assert dev.read(out, 2) == [1.0, 1.0]

    def test_scalar_args_pass_through(self):
        kb = KernelBuilder("s", regs_per_thread=12)
        kb.global_thread_id(R(0))
        kb.imad(R(1), R(0), Imm(4), kb.param(0))
        kb.st_global(R(1), kb.param(1))
        kb.exit()
        dev = GpuDevice(time_scale=8.0)
        out = dev.malloc_managed(64 * 4)
        dev.launch(kb.build(), grid=1, block=64, args=[out, 7.5])
        assert dev.read(out, 1) == [7.5]

    def test_wd_scheme_through_runtime(self):
        dev = GpuDevice(scheme="wd-lastcheck", time_scale=8.0)
        out = dev.malloc_managed(8 * 64 * 4)
        res = dev.launch(self.kernel(), grid=8, block=64, args=[out])
        assert res.cycles > 0
