"""Bit-identity contract tests (docs/PERFORMANCE.md).

The committed fixture ``tests/golden_digests.json`` was generated before
the hot-loop optimizations landed; these tests recompute the digests with
the current code and require exact matches.  The fast subset (micro
workloads x schemes x paging, plus the block-switching/local-handling
cases) runs on every tier-1 invocation; set ``REPRO_GOLDEN_FULL=1`` to
also sweep the parboil rows the nightly uses.

Regenerate (only for an intentional model change)::

    PYTHONPATH=src python -m repro.harness golden --update
"""

import os

import pytest

from repro.harness import golden

FULL = os.environ.get("REPRO_GOLDEN_FULL", "") == "1"

FIXTURE = golden.load_fixture()

_FAST = [(golden.case_key(c), c) for c in golden.golden_cases(full=False)]
_SLOW = [
    (k, c)
    for k, c in ((golden.case_key(c), c) for c in golden.golden_cases(full=True))
    if k not in dict(_FAST)
]


def _check(key, case):
    want = FIXTURE["cases"].get(key)
    assert want is not None, f"{key} missing from fixture; regenerate"
    got = golden.run_case(case)
    if got["digest"] != want["digest"]:
        detail = {
            f: (want.get(f), got.get(f))
            for f in ("cycles", "dynamic_instructions", "sm_stats",
                      "fault_stats", "gpu_pages", "gpu_pages_mapped")
            if want.get(f) != got.get(f)
        }
        pytest.fail(f"{key}: end state diverged from golden fixture: {detail}")


@pytest.mark.parametrize("key,case", _FAST, ids=[k for k, _ in _FAST])
def test_fast_matrix_bit_identical(key, case):
    _check(key, case)


@pytest.mark.skipif(not FULL, reason="set REPRO_GOLDEN_FULL=1 for parboil rows")
@pytest.mark.parametrize("key,case", _SLOW, ids=[k for k, _ in _SLOW])
def test_full_matrix_bit_identical(key, case):
    _check(key, case)


def test_telemetry_does_not_change_timing():
    """The contract's second half: telemetry on => same digest."""
    case = {"workload": "saxpy", "scheme": "replay-queue", "paging": "demand"}
    plain = FIXTURE["cases"][golden.case_key(case)]["digest"]
    assert golden.run_case(case, telemetry=True)["digest"] == plain


def test_fixture_covers_fast_matrix():
    missing = [k for k, _ in _FAST if k not in FIXTURE["cases"]]
    assert not missing
