"""Use-case-1 mechanics: switch-out/in decisions, extra-block budget,
context sizes, squash bookkeeping."""

import pytest

from repro.core import OperandLog, ReplayQueue, make_scheme
from repro.system import GPUConfig, GpuSimulator, NVLINK
from repro.timing.sm import BlockRT
from repro.vm import SegmentKind
from repro.workloads.base import Workload
from repro.isa import Imm, KernelBuilder, R


class FaultStorm(Workload):
    """Every block immediately streams through its own fresh input granule,
    guaranteeing one long migration per block — the scenario use case 1
    targets."""

    name = "fault-storm"

    def __init__(self, grid_dim: int = 128, block_dim: int = 128,
                 loads: int = 8) -> None:
        # 128 regs/thread -> 4 resident blocks/SM (64 total): the grid
        # oversubscribes the GPU 2x, so pending blocks exist to switch in.
        super().__init__(grid_dim, block_dim)
        self.loads = loads

    GRANULE = 64 * 1024

    def build_kernel(self):
        kb = KernelBuilder("fault-storm", regs_per_thread=128)
        kb.ctaid(R(0))
        kb.tid(R(1))
        kb.imad(R(2), R(0), Imm(self.GRANULE), kb.param(0))
        kb.imad(R(2), R(1), Imm(4), R(2))
        kb.mov(R(3), Imm(0.0))
        for i in range(self.loads):
            kb.ld_global(R(4 + i), R(2), offset=i * 1024)
        for i in range(self.loads):
            kb.fadd(R(3), R(3), R(4 + i))
        # some compute to overlap with other blocks' migrations
        for _ in range(40):
            kb.ffma(R(3), R(3), Imm(1.0001), Imm(0.1))
        kb.global_thread_id(R(20))
        kb.imad(R(21), R(20), Imm(4), kb.param(1))
        kb.st_global(R(21), R(3))
        kb.exit()
        return kb.build()

    def segments(self):
        return [
            ("in", self.grid_dim * self.GRANULE, SegmentKind.INPUT),
            ("out", self.num_threads * 4, SegmentKind.OUTPUT),
        ]

    def params(self, aspace):
        return [aspace.segment("in").base, aspace.segment("out").base]


@pytest.fixture(scope="module")
def storm():
    return FaultStorm()


def run_storm(storm, block_switching, ideal=False, config=None):
    config = config or GPUConfig().time_scaled(8.0)
    sim = GpuSimulator(
        kernel=storm.kernel,
        trace=storm.trace(),
        address_space=storm.make_address_space(),
        config=config,
        scheme=make_scheme("replay-queue"),
        paging="demand",
        interconnect=NVLINK.scaled(8.0),
        block_switching=block_switching,
        ideal_switch=ideal,
    )
    return sim, sim.run()


class TestBlockSwitching:
    def test_switches_happen(self, storm):
        sim, res = run_storm(storm, block_switching=True)
        outs = sum(s.block_switch_outs for s in res.sm_stats)
        ins = sum(s.block_switch_ins for s in res.sm_stats)
        assert outs > 0
        assert ins > 0

    def test_all_blocks_still_complete(self, storm):
        sim, res = run_storm(storm, block_switching=True)
        assert sum(s.blocks_completed for s in res.sm_stats) == storm.grid_dim
        # no block left resident or off-chip
        for sm in sim.sms:
            assert not sm.blocks
            assert not sm.offchip
            assert sm.free_slots == sm.occupancy

    def test_switching_helps_fault_storm(self, storm):
        _, base = run_storm(storm, block_switching=False)
        _, switched = run_storm(storm, block_switching=True)
        assert switched.cycles < base.cycles

    def test_ideal_not_slower_than_normal(self, storm):
        _, normal = run_storm(storm, block_switching=True)
        _, ideal = run_storm(storm, block_switching=True, ideal=True)
        assert ideal.cycles <= normal.cycles * 1.10

    def test_extra_block_budget_respected(self, storm):
        config = GPUConfig().time_scaled(8.0)
        sim, res = run_storm(storm, block_switching=True, config=config)
        for sm in sim.sms:
            if sm.local_scheduler is not None:
                assert sm.local_scheduler.extra_fetched <= config.max_extra_blocks

    def test_pending_fault_slots_drain(self, storm):
        sim, _ = run_storm(storm, block_switching=True)
        for sm in sim.sms:
            assert sm.pending_faults == 0

    def test_scoreboards_clean_at_end(self, storm):
        sim, _ = run_storm(storm, block_switching=True)
        # every commit/squash must balance its scoreboard marks
        # (blocks are gone; nothing to check per warp, but stats must agree)
        issued = sum(s.issued for s in sim.sms for s in [s.stats])
        committed = sum(s.stats.committed for s in sim.sms)
        # squashed instructions are re-issued and re-committed; committed
        # can exceed the trace count but never the issued count
        assert committed <= issued


class TestContextSizes:
    def test_context_includes_scheme_state(self, storm):
        config = GPUConfig()
        from repro.functional.trace import BlockTrace

        block = BlockRT(BlockTrace(block_id=0), context_bytes=1000,
                        log_capacity=2048)
        rq = ReplayQueue()
        log = OperandLog(16)
        assert rq.context_extra_bytes(block) == 0  # nothing in flight
        assert log.context_extra_bytes(block) == 2048  # its log partition
