"""Stress micro-workload tests: each stresses the subsystem it claims to,
and executes correctly under every scheme."""

import pytest

from repro.core import make_scheme
from repro.system import GpuSimulator
from repro.workloads import MICRO


def simulate(wl, scheme="baseline"):
    sim = GpuSimulator(
        kernel=wl.kernel,
        trace=wl.trace(),
        address_space=wl.make_address_space(),
        scheme=make_scheme(scheme),
        paging="premapped",
    )
    return sim, sim.run()


class TestTlbThrash:
    def test_walker_pressure(self):
        wl = MICRO.fresh("tlb-thrash")
        sim, res = simulate(wl)
        mmu = sim.memsys.mmu
        # every iteration touches fresh pages: walks dominate
        assert mmu.walkers.walks > 50
        assert mmu.l2_tlb.stats.misses > 50

    def test_divergence_free(self):
        wl = MICRO.fresh("tlb-thrash")
        trace = wl.trace()
        for b in trace.blocks[:2]:
            for w in b.warps:
                for t in w.instructions:
                    if not t.inst.info.is_control:  # branches log taken mask
                        assert t.active == 32


class TestMshrStorm:
    def test_uncoalesced_requests(self):
        wl = MICRO.fresh("mshr-storm")
        trace = wl.trace()
        from repro.mem import coalesce

        loads = [
            t for b in trace.blocks[:1] for w in b.warps
            for t in w.instructions
            if t.inst.info.can_fault and not t.inst.info.is_store
        ]
        degree = [coalesce(t.addresses).num_requests for t in loads]
        assert max(degree) == 32  # fully scattered warp accesses

    def test_mshr_stalls_observed(self):
        wl = MICRO.fresh("mshr-storm")
        sim, res = simulate(wl)
        stalls = sum(c.stats.mshr_stalls for c in sim.memsys.l1_caches)
        assert stalls > 0

    def test_wd_commit_hurts_most_here(self):
        wl = MICRO.fresh("mshr-storm")
        _, base = simulate(wl, "baseline")
        _, wd = simulate(wl, "wd-commit")
        assert wd.cycles > base.cycles


class TestDivergenceTree:
    def test_functional_result(self):
        wl = MICRO.fresh("divergence-tree")
        mem = wl.run_functional()
        aspace = wl.make_address_space()
        out = mem.read_array(aspace.segment("out").base, wl.num_threads)
        for tid, value in enumerate(out):
            expect = sum(
                (1 << lvl) if (tid >> lvl) & 1 == 0 else -(1 << lvl)
                for lvl in range(wl.depth)
            )
            assert value == expect

    def test_active_masks_halve(self):
        wl = MICRO.fresh("divergence-tree")
        trace = wl.trace()
        actives = {
            t.active
            for b in trace.blocks[:1]
            for w in b.warps
            for t in w.instructions
        }
        # depth-4 tree: masks of 32, 16, 8, 4 (and 2 at the leaves)
        assert {32, 16, 8, 4} <= actives

    @pytest.mark.parametrize(
        "scheme", ["baseline", "wd-commit", "wd-lastcheck", "replay-queue"]
    )
    def test_runs_under_every_scheme(self, scheme):
        wl = MICRO.fresh("divergence-tree")
        _, res = simulate(wl, scheme)
        assert sum(s.blocks_completed for s in res.sm_stats) == wl.grid_dim
