#!/usr/bin/env python
"""Check relative markdown links (and their #anchors) in the repo docs.

Scans README.md, EXPERIMENTS.md, DESIGN.md, CHANGES.md, ROADMAP.md and
docs/*.md for inline links ``[text](target)``; external links
(http/https/mailto) are ignored.  For each relative link it verifies the
target exists on disk, and when the link carries a fragment
(``file.md#section`` or the in-file ``#section``) that the target file
has a heading whose GitHub slug matches.

Run:  python tools/check_doc_links.py [repo-root]
Exits nonzero listing every broken link.  CI runs this on each push
(`docs-link-check`), and tests/test_docs_and_api.py runs it in tier-1.
"""

import re
import sys
from pathlib import Path

DOC_GLOBS = [
    "README.md",
    "EXPERIMENTS.md",
    "DESIGN.md",
    "CHANGES.md",
    "ROADMAP.md",
    "docs/*.md",
]

#: inline links, excluding images; [text](target "title") tolerated
LINK_RE = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*)$")
EXTERNAL = ("http://", "https://", "mailto:")


def strip_code_blocks(text):
    """Remove fenced code blocks so literal ``[x](y)`` snippets and
    rendered tables inside ``` fences don't count as links."""
    out, fenced = [], False
    for line in text.splitlines():
        if line.lstrip().startswith("```"):
            fenced = not fenced
            continue
        out.append("" if fenced else line)
    return "\n".join(out)


def github_slug(heading):
    """GitHub's anchor slug: lowercase, strip punctuation (a dash and
    alphanumerics survive), spaces become dashes."""
    # drop inline code/emphasis markers and links' brackets first
    heading = re.sub(r"[`*_]", "", heading)
    heading = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", heading)
    slug = []
    for ch in heading.strip().lower():
        if ch.isalnum():
            slug.append(ch)
        elif ch in (" ", "-"):
            slug.append("-")
        # other punctuation: dropped
    return "".join(slug)


def heading_slugs(path):
    """All heading anchors a markdown file exposes (with GitHub's ``-N``
    suffixing for duplicates)."""
    seen, slugs = {}, set()
    text = strip_code_blocks(path.read_text(encoding="utf-8"))
    for line in text.splitlines():
        m = HEADING_RE.match(line)
        if not m:
            continue
        slug = github_slug(m.group(2))
        n = seen.get(slug, 0)
        seen[slug] = n + 1
        slugs.add(slug if n == 0 else f"{slug}-{n}")
    return slugs


def check_file(md, root):
    """Yield ``(link, reason)`` for every broken link in ``md``."""
    text = strip_code_blocks(md.read_text(encoding="utf-8"))
    for target in LINK_RE.findall(text):
        if target.startswith(EXTERNAL):
            continue
        path_part, _, fragment = target.partition("#")
        if path_part:
            dest = (md.parent / path_part).resolve()
            if not dest.exists():
                yield target, f"missing file {path_part}"
                continue
        else:
            dest = md
        if fragment:
            if dest.suffix.lower() not in (".md", ".markdown"):
                continue  # anchor into non-markdown: not checkable
            if fragment.lower() not in heading_slugs(dest):
                yield target, (
                    f"no heading for anchor #{fragment} in "
                    f"{dest.relative_to(root)}"
                )


def main(argv=None):
    """CLI entry point: print broken links, return the count."""
    argv = sys.argv[1:] if argv is None else argv
    root = Path(argv[0]).resolve() if argv else Path(__file__).parent.parent
    files = []
    for pattern in DOC_GLOBS:
        files.extend(sorted(root.glob(pattern)))
    broken = 0
    for md in files:
        for target, reason in check_file(md, root):
            print(f"{md.relative_to(root)}: [{target}] -> {reason}")
            broken += 1
    print(f"checked {len(files)} files: "
          + ("all links ok" if not broken else f"{broken} broken link(s)"))
    return broken


if __name__ == "__main__":
    sys.exit(1 if main() else 0)
