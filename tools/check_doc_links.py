#!/usr/bin/env python
"""Check relative markdown links (and their #anchors) in the repo docs.

Scans README.md, EXPERIMENTS.md, DESIGN.md, CHANGES.md, ROADMAP.md and
docs/*.md for inline links ``[text](target)``; external links
(http/https/mailto) are ignored.  For each relative link it verifies the
target exists on disk, and when the link carries a fragment
(``file.md#section`` or the in-file ``#section``) that the target file
has a heading whose GitHub slug matches.

Three structural checks ride along:

- **orphan detection** — every ``docs/*.md`` page must be reachable from
  ``README.md`` by following relative markdown links (a page nothing
  links to is dead documentation);
- **harness-command validation** — every ``python -m repro.harness
  <sub>`` invocation in the docs (code fences included — that's where
  commands live) must name a real subcommand.  The known set is parsed
  *textually* from ``src/repro/harness/__main__.py`` (the
  ``SUBCOMMANDS`` tuple) and ``src/repro/harness/experiments.py`` (the
  ``ALL_EXPERIMENTS`` keys) — no import, because the CI docs-link-check
  job installs no numpy.  When the source tree is absent the check is
  skipped;
- **serve-counter validation** — every ``serve.*`` metric name in the
  docs (code fences included) must exist in the authoritative manifest,
  parsed textually from ``src/repro/serve/metrics.py`` (the
  ``SERVE_COUNTERS`` tuple).  ``{a,b}`` shorthand is brace-expanded,
  any ``[...]`` index normalizes to the manifest's ``[*]``, and both
  ``prefix.*`` wildcards and bare namespace references (e.g.
  ``serve.wire``) are accepted when the manifest has counters under
  them.  A runtime test (tests/test_serve.py) keeps the manifest
  itself honest against what the service actually registers.

Run:  python tools/check_doc_links.py [repo-root]
Exits nonzero listing every broken link.  CI runs this on each push
(`docs-link-check`), and tests/test_docs_and_api.py runs it in tier-1.
"""

import re
import sys
from pathlib import Path

DOC_GLOBS = [
    "README.md",
    "EXPERIMENTS.md",
    "DESIGN.md",
    "CHANGES.md",
    "ROADMAP.md",
    "docs/*.md",
]

#: inline links, excluding images; [text](target "title") tolerated
LINK_RE = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*)$")
EXTERNAL = ("http://", "https://", "mailto:")

#: a documented harness invocation and its first argument (if any)
HARNESS_RE = re.compile(r"python -m repro\.harness(?:\s+(\S+))?")

#: dispatch targets of ``python -m repro.harness`` that are neither in
#: the SUBCOMMANDS tuple nor ALL_EXPERIMENTS keys
EXTRA_SUBCOMMANDS = {"all", "table1", "diagrams"}


def strip_code_blocks(text):
    """Remove fenced code blocks so literal ``[x](y)`` snippets and
    rendered tables inside ``` fences don't count as links."""
    out, fenced = [], False
    for line in text.splitlines():
        if line.lstrip().startswith("```"):
            fenced = not fenced
            continue
        out.append("" if fenced else line)
    return "\n".join(out)


def github_slug(heading):
    """GitHub's anchor slug: lowercase, strip punctuation (a dash and
    alphanumerics survive), spaces become dashes."""
    # drop inline code/emphasis markers and links' brackets first
    heading = re.sub(r"[`*_]", "", heading)
    heading = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", heading)
    slug = []
    for ch in heading.strip().lower():
        if ch.isalnum():
            slug.append(ch)
        elif ch in (" ", "-"):
            slug.append("-")
        # other punctuation: dropped
    return "".join(slug)


def heading_slugs(path):
    """All heading anchors a markdown file exposes (with GitHub's ``-N``
    suffixing for duplicates)."""
    seen, slugs = {}, set()
    text = strip_code_blocks(path.read_text(encoding="utf-8"))
    for line in text.splitlines():
        m = HEADING_RE.match(line)
        if not m:
            continue
        slug = github_slug(m.group(2))
        n = seen.get(slug, 0)
        seen[slug] = n + 1
        slugs.add(slug if n == 0 else f"{slug}-{n}")
    return slugs


def check_file(md, root):
    """Yield ``(link, reason)`` for every broken link in ``md``."""
    text = strip_code_blocks(md.read_text(encoding="utf-8"))
    for target in LINK_RE.findall(text):
        if target.startswith(EXTERNAL):
            continue
        path_part, _, fragment = target.partition("#")
        if path_part:
            dest = (md.parent / path_part).resolve()
            if not dest.exists():
                yield target, f"missing file {path_part}"
                continue
        else:
            dest = md
        if fragment:
            if dest.suffix.lower() not in (".md", ".markdown"):
                continue  # anchor into non-markdown: not checkable
            if fragment.lower() not in heading_slugs(dest):
                yield target, (
                    f"no heading for anchor #{fragment} in "
                    f"{dest.relative_to(root)}"
                )


def known_subcommands(root):
    """The set of valid ``python -m repro.harness`` first arguments,
    parsed textually (no import — the CI docs-link-check job installs no
    numpy, so the harness package cannot be imported there).  Returns
    ``None`` when the source tree is absent, meaning "skip the check"."""
    main_py = root / "src" / "repro" / "harness" / "__main__.py"
    exp_py = root / "src" / "repro" / "harness" / "experiments.py"
    if not main_py.exists() or not exp_py.exists():
        return None
    names = set(EXTRA_SUBCOMMANDS)
    m = re.search(r"SUBCOMMANDS\s*=\s*\(([^)]*)\)",
                  main_py.read_text(encoding="utf-8"))
    if m:
        names.update(re.findall(r"\"([^\"]+)\"", m.group(1)))
    m = re.search(r"ALL_EXPERIMENTS\s*=\s*\{([^}]*)\}",
                  exp_py.read_text(encoding="utf-8"))
    if m:
        names.update(re.findall(r"\"([^\"]+)\"\s*:", m.group(1)))
    return names


def check_harness_commands(md, known):
    """Yield ``(snippet, reason)`` for every documented harness
    invocation whose first argument names no real subcommand.  Runs on
    the *raw* text — commands live inside code fences."""
    text = md.read_text(encoding="utf-8")
    for m in HARNESS_RE.finditer(text):
        token = (m.group(1) or "").strip("`'\"),.:;")
        if not token or token.startswith(("-", "<")):
            continue  # bare/--flag/placeholder invocation: nothing to name
        if token not in known:
            yield m.group(0), f"unknown harness subcommand {token!r}"


#: a ``serve.*`` counter name in prose or a code fence; the lookbehind
#: keeps module paths (``repro.serve.core``) and filesystem paths
#: (``/tmp/serve.sock``) from matching
SERVE_COUNTER_RE = re.compile(r"(?<![\w./])serve\.[\w.\[\]{},*\-]+")


def known_serve_counters(root):
    """The authoritative ``serve.*`` counter names, parsed textually
    from the ``SERVE_COUNTERS`` tuple in ``src/repro/serve/metrics.py``
    (no import — same constraint as :func:`known_subcommands`).
    Returns ``None`` when the manifest is absent, meaning "skip"."""
    metrics_py = root / "src" / "repro" / "serve" / "metrics.py"
    if not metrics_py.exists():
        return None
    # span to the closing paren at line start: inline comments inside
    # the tuple may themselves contain parentheses
    m = re.search(r"SERVE_COUNTERS\s*=\s*\((.*?)\n\)",
                  metrics_py.read_text(encoding="utf-8"), re.S)
    if not m:
        return None
    return set(re.findall(r"\"(serve\.[^\"]+)\"", m.group(1)))


def _expand_braces(token):
    """``a.{x,y}`` -> ``a.x``, ``a.y`` (recursively)."""
    m = re.search(r"\{([^}]*)\}", token)
    if not m:
        return [token]
    out = []
    for alt in m.group(1).split(","):
        out.extend(_expand_braces(
            token[:m.start()] + alt.strip() + token[m.end():]
        ))
    return out


def check_serve_counters(md, known):
    """Yield ``(snippet, reason)`` for every documented ``serve.*``
    counter the manifest doesn't know.  Runs on the *raw* text —
    counter names live inside code fences and tables.  A ``prefix.*``
    wildcard or a bare namespace (``serve.tenant[t]``) passes when the
    manifest has counters beneath it."""
    text = md.read_text(encoding="utf-8")
    for m in SERVE_COUNTER_RE.finditer(text):
        raw = m.group(0).rstrip(".,;:`")
        for token in _expand_braces(raw):
            # any concrete index ([t], [storm]) means the per-tenant
            # wildcard slot in the manifest
            token = re.sub(r"\[[^\]]*\]", "[*]", token)
            if token in known:
                continue
            prefix = token[:-2] if token.endswith(".*") else token
            if any(k.startswith(prefix + ".") or k == prefix
                   for k in known):
                continue
            yield raw, f"unknown serve counter {token!r}"


def reachable_from_readme(root):
    """Every markdown file reachable from README.md by following
    relative links (resolved paths), code fences excluded."""
    seen = set()
    queue = [(root / "README.md").resolve()]
    while queue:
        md = queue.pop()
        if md in seen or not md.exists():
            continue
        seen.add(md)
        text = strip_code_blocks(md.read_text(encoding="utf-8"))
        for target in LINK_RE.findall(text):
            if target.startswith(EXTERNAL):
                continue
            path_part = target.partition("#")[0]
            if not path_part:
                continue
            dest = (md.parent / path_part).resolve()
            if dest.suffix.lower() in (".md", ".markdown"):
                queue.append(dest)
    return seen


def orphaned_docs(root):
    """``docs/*.md`` pages no link chain from README.md reaches."""
    reached = reachable_from_readme(root)
    return [
        md for md in sorted((root / "docs").glob("*.md"))
        if md.resolve() not in reached
    ]


def main(argv=None):
    """CLI entry point: print broken links, return the count."""
    argv = sys.argv[1:] if argv is None else argv
    root = Path(argv[0]).resolve() if argv else Path(__file__).parent.parent
    files = []
    for pattern in DOC_GLOBS:
        files.extend(sorted(root.glob(pattern)))
    broken = 0
    known = known_subcommands(root)
    counters = known_serve_counters(root)
    for md in files:
        for target, reason in check_file(md, root):
            print(f"{md.relative_to(root)}: [{target}] -> {reason}")
            broken += 1
        if known is not None:
            for snippet, reason in check_harness_commands(md, known):
                print(f"{md.relative_to(root)}: [{snippet}] -> {reason}")
                broken += 1
        if counters is not None:
            for snippet, reason in check_serve_counters(md, counters):
                print(f"{md.relative_to(root)}: [{snippet}] -> {reason}")
                broken += 1
    for md in orphaned_docs(root):
        print(f"{md.relative_to(root)}: orphaned — no link chain from "
              "README.md reaches it")
        broken += 1
    print(f"checked {len(files)} files: "
          + ("all links ok" if not broken else f"{broken} problem(s)"))
    return broken


if __name__ == "__main__":
    sys.exit(1 if main() else 0)
